//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p oovr-bench --release --bin figures -- all
//! cargo run -p oovr-bench --release --bin figures -- fig15 fig16
//! cargo run -p oovr-bench --release --bin figures -- --scale 0.5 fig4
//! cargo run -p oovr-bench --release --bin figures -- --csv out/ all
//! cargo run -p oovr-bench --release --bin figures -- resilience
//! cargo run -p oovr-bench --release --bin figures -- serve
//! cargo run -p oovr-bench --release --bin figures -- cluster chaos
//! cargo run -p oovr-bench --release --bin figures -- verify
//! ```
//!
//! `--scale` shrinks the workloads (default 1.0 = the paper's resolutions
//! and draw counts). `--csv DIR` additionally writes one CSV per figure.
//!
//! Each experiment runs isolated behind `catch_unwind`: a panicking,
//! empty, or NaN-producing experiment is reported and the run continues
//! with the rest. The process exits non-zero, with a summary line listing
//! every failed id, if anything went wrong.
//!
//! `verify` regenerates the deterministic fault-free tables at a fixed
//! reduced scale, hashes their CSV with SHA-256, and compares the digest
//! to the committed `results/golden_digest.txt` — a fast bit-identity
//! guard for the figure pipeline. `verify-write` refreshes the file.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use oovr::experiments::{
    self, ablation_batch_cap, ablation_calibration, ablation_components, ablation_tsl, energy,
    ext_sort_middle, fig10, fig15, fig16, fig17, fig18, fig4, fig7, fig8, fig9, prediction_error,
    resilience, smp_validation, steady_state, FigureTable,
};
use oovr::overhead::EngineOverhead;
use oovr::OoVr;
use oovr_bench::sha256;
use oovr_edge::{
    edge_chaos_table, edge_health_table, edge_ladder_table, edge_scenario_table, simulate_edge,
    EdgeChaosCell, EdgeConfig, LinkConfig,
};
use oovr_frameworks::{Baseline, ObjectSfr, RenderScheme};
use oovr_scene::stats::SceneStats;
use oovr_scene::vr::{GAMING_PC, STEREO_VR};
use oovr_scene::BenchmarkSpec;
use oovr_serve::{
    capacity, capacity_table, chaos_table, cluster_policy_table, cluster_scale_table, cost_stream,
    health_table, metrics_table, simulate, simulate_cluster, simulate_metered, ChaosCell,
    ClusterConfig, Placement, PoseTrajectory, ServeConfig, ServeScheme,
};

const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4",
    "smp",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig10_pred",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "overhead",
    "energy",
    "steady",
    "ext_sort_middle",
];

/// Ablations are opt-in (`figures -- ablations` or by id): they re-render
/// every workload several times per knob.
const ABLATION_IDS: &[&str] =
    &["ablation_tsl", "ablation_batch_cap", "ablation_calibration", "ablation_components"];

/// The fault-injection sweep is opt-in too (`figures -- resilience`): it
/// renders every workload under each scenario × severity × scheme cell.
const RESILIENCE_IDS: &[&str] = &["resilience"];

/// Non-table ids `run_experiment` dispatches directly (everything that
/// prints or writes something other than one `FigureTable`).
const SPECIAL_IDS: &[&str] = &[
    "serve",
    "cluster",
    "chaos",
    "temporal",
    "metrics",
    "health",
    "edge",
    "perf",
    "verify",
    "verify-write",
    "trace-check",
];

/// Whether `id` names an experiment this binary can run. `trace:` ids are
/// validated later (scheme/workload resolution has its own errors).
fn known_id(id: &str) -> bool {
    ALL_IDS.contains(&id)
        || ABLATION_IDS.contains(&id)
        || RESILIENCE_IDS.contains(&id)
        || SPECIAL_IDS.contains(&id)
        || id.starts_with("trace:")
}

/// Deterministic fault-free tables covered by the golden digest, in hash
/// order. Scale-dependent prints (table3) and wall-clock output (perf) are
/// excluded; everything here must be bit-identical run to run. `fig10_pred`
/// and `serve` are deliberately absent: their cells (error statistics,
/// capacity search results) shift granularity with `--scale`, so their
/// determinism is pinned by `prop_trace` / `prop_serve` instead of the
/// fixed-scale digest.
const VERIFY_IDS: &[&str] = &[
    "fig4",
    "smp",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "energy",
    "steady",
    "ext_sort_middle",
];

/// Workload scale used by `verify`; small enough for a pre-commit hook,
/// large enough that every code path in the figure pipeline runs.
const VERIFY_SCALE: f64 = 0.12;

/// Committed golden digest location (repo-relative).
const GOLDEN_PATH: &str = "results/golden_digest.txt";

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = 1.0f64;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a number in (0,1]");
            }
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv requires a directory"));
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ABLATION_IDS.iter().map(|s| s.to_string())),
            "trace" => {
                let scheme = args.next().expect("trace requires <scheme> <workload>");
                let workload = args.next().expect("trace requires <scheme> <workload>");
                ids.push(format!("trace:{scheme}:{workload}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    let unknown: Vec<&str> = ids.iter().map(String::as_str).filter(|id| !known_id(id)).collect();
    if ids.is_empty() || !unknown.is_empty() {
        if !unknown.is_empty() {
            eprintln!("figures: unknown id(s): {}", unknown.join(" "));
        }
        eprintln!(
            "usage: figures [--scale S] [--csv DIR] <id>... | all | ablations | serve | cluster \
             | chaos | temporal | metrics | health | edge | perf | verify \
             | trace <scheme> <workload> | trace-check"
        );
        eprintln!(
            "ids: {} {} {} {}",
            ALL_IDS.join(" "),
            ABLATION_IDS.join(" "),
            RESILIENCE_IDS.join(" "),
            SPECIAL_IDS.join(" ")
        );
        eprintln!(
            "trace schemes: baseline object ooapp oovr oovr-res serve cluster temporal edge; \
             workloads: demo or a table3 name"
        );
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let specs = experiments::paper_workloads(scale);
    println!("# OO-VR reproduction — {} workloads at scale {scale}\n", specs.len());

    let mut failures: Vec<String> = Vec::new();
    for id in ids {
        let t0 = std::time::Instant::now();
        if let Err(why) = run_experiment(&id, &specs, scale, csv_dir.as_deref()) {
            eprintln!("FAILED [{id}]: {why}\n");
            failures.push(id.clone());
            continue;
        }
        println!("  [{} in {:.1?}]\n", id, t0.elapsed());
    }
    if !failures.is_empty() {
        eprintln!("figures: {} experiment(s) failed: {}", failures.len(), failures.join(" "));
        std::process::exit(1);
    }
}

/// Runs one experiment id isolated behind `catch_unwind`, validating table
/// output (non-empty, all-finite). `Err` carries a human-readable reason.
fn run_experiment(
    id: &str,
    specs: &[BenchmarkSpec],
    scale: f64,
    csv_dir: Option<&str>,
) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        match id {
            "table1" => print_table1(),
            "table2" => print_table2(),
            "table3" => print_table3(scale),
            "overhead" => print_overhead(),
            "serve" => return run_serve(specs, scale, csv_dir),
            "cluster" => return run_cluster(specs, scale, csv_dir),
            "chaos" => return run_chaos(specs, scale, csv_dir),
            "temporal" => return run_temporal(specs, scale, csv_dir),
            "metrics" => return run_metrics(specs, scale, csv_dir),
            "health" => return run_health(specs, scale, csv_dir),
            "edge" => return run_edge(specs, scale, csv_dir),
            "perf" => run_perf(scale),
            "verify" => return run_verify(false),
            "verify-write" => return run_verify(true),
            "trace-check" => return run_trace_check(scale),
            id if id.starts_with("trace:") => {
                let mut parts = id.splitn(3, ':');
                parts.next();
                let scheme = parts.next().unwrap_or_default();
                let workload = parts.next().unwrap_or_default();
                return run_trace(scheme, workload, scale);
            }
            _ => {
                let table = build_table(id, specs).ok_or_else(|| format!("unknown id {id:?}"))?;
                validate_table(&table)?;
                println!("{table}");
                if let Some(dir) = csv_dir {
                    let path = format!("{dir}/{}.csv", table.id);
                    let mut f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
                    f.write_all(table.to_csv().as_bytes()).map_err(|e| e.to_string())?;
                    println!("  wrote {path}");
                }
            }
        }
        Ok(())
    }));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(format!("panicked: {}", panic_message(&payload))),
    }
}

/// Builds the named figure table, or `None` for unknown ids.
fn build_table(id: &str, specs: &[BenchmarkSpec]) -> Option<FigureTable> {
    Some(match id {
        "fig4" => fig4(specs),
        "smp" => smp_validation(specs),
        "fig7" => fig7(specs),
        "fig8" => fig8(specs),
        "fig9" => fig9(specs),
        "fig10" => fig10(specs),
        "fig10_pred" => prediction_error(specs),
        "fig15" => fig15(specs),
        "fig16" => fig16(specs),
        "fig17" => fig17(specs),
        "fig18" => fig18(specs),
        "energy" => energy(specs),
        "steady" => steady_state(specs),
        "ext_sort_middle" => ext_sort_middle(specs),
        "resilience" => resilience(specs),
        "ablation_tsl" => ablation_tsl(specs),
        "ablation_batch_cap" => ablation_batch_cap(specs),
        "ablation_calibration" => ablation_calibration(specs),
        "ablation_components" => ablation_components(specs),
        _ => return None,
    })
}

/// Rejects empty or NaN/infinite table output so a silently-degenerate
/// experiment counts as a failure, not a success.
fn validate_table(t: &FigureTable) -> Result<(), String> {
    if t.rows.is_empty() {
        return Err(format!("table {} has no rows", t.id));
    }
    for (label, vals) in &t.rows {
        if vals.is_empty() {
            return Err(format!("table {} row {label:?} has no values", t.id));
        }
        if let Some(bad) = vals.iter().find(|v| !v.is_finite()) {
            return Err(format!("table {} row {label:?} contains non-finite value {bad}", t.id));
        }
    }
    Ok(())
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Computes the golden digest: SHA-256 over the CSV of every fault-free
/// deterministic table at `VERIFY_SCALE`, in `VERIFY_IDS` order.
fn golden_digest() -> String {
    let specs = experiments::paper_workloads(VERIFY_SCALE);
    let mut h = sha256::Sha256::new();
    for id in VERIFY_IDS {
        let t = build_table(id, &specs).expect("verify ids are known");
        h.update(t.id.as_bytes());
        h.update(b"\n");
        h.update(t.to_csv().as_bytes());
    }
    sha256::to_hex(&h.finalize())
}

/// `figures -- verify` / `verify-write`: regenerate, hash, compare (or
/// refresh) `results/golden_digest.txt`.
fn run_verify(write: bool) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let digest = golden_digest();
    println!(
        "== verify — {} tables at scale {VERIFY_SCALE} in {:.1?} ==",
        VERIFY_IDS.len(),
        t0.elapsed()
    );
    println!("digest {digest}");
    if write {
        std::fs::write(GOLDEN_PATH, format!("{digest}\n")).map_err(|e| e.to_string())?;
        println!("wrote {GOLDEN_PATH}");
        return Ok(());
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .map_err(|e| format!("cannot read {GOLDEN_PATH}: {e} (run `figures -- verify-write`)"))?;
    let committed = committed.trim();
    if committed == digest {
        println!("golden digest matches {GOLDEN_PATH}");
        Ok(())
    } else {
        Err(format!(
            "golden digest mismatch: computed {digest}, {GOLDEN_PATH} has {committed} — \
             figure output drifted; if intentional, refresh with `figures -- verify-write`"
        ))
    }
}

/// Where the serving capacity table lands (repo-relative). Not part of the
/// golden digest: like `fig10_pred`, the table's cells are search results
/// (capacity counts) whose granularity shifts with `--scale`, so `verify`
/// pins the fixed-scale figure tables and the serve proptests pin serving
/// determinism instead.
const SERVE_CSV: &str = "results/serve.csv";

/// `figures -- serve`: the serving-capacity experiment. Prints the capacity
/// table (max concurrent sessions at <1% missed vsync per scheme ×
/// workload), writes it to `results/serve.csv`, then demos the scheduler's
/// QoS accounting with one default open-loop run per scheme on the first
/// workload.
fn run_serve(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ServeConfig::default();
    let table = capacity_table(specs, &gpu, &cfg);
    validate_table(&table)?;
    println!("{table}");
    for spec in specs {
        let base = table.value(&spec.name, "Baseline").unwrap_or(0.0);
        let oovr = table.value(&spec.name, "OOVR").unwrap_or(0.0);
        if oovr <= base {
            return Err(format!(
                "{}: OO-VR capacity {oovr} does not exceed Baseline {base}",
                spec.name
            ));
        }
    }
    // The committed `results/serve.csv` is the full-scale table; scaled
    // runs (the check.sh smoke) print and validate without clobbering it.
    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(SERVE_CSV, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {SERVE_CSV}");
    }
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{}.csv", table.id);
        std::fs::write(&path, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }

    let spec = &specs[0];
    println!(
        "== serve — QoS of a default run on {} ({} arrivals, {} paced frames, 90 Hz) ==",
        spec.name, cfg.sessions, cfg.frames_per_session
    );
    println!(
        "{:<12} {:>4} {:>4} {:>12} {:>12} {:>7} {:>5} {:>5} {:>8}",
        "scheme", "adm", "rej", "p50_cyc", "p99_cyc", "miss%", "shed", "minQ", "goodput%"
    );
    for &scheme in ServeScheme::ALL.iter() {
        let out = simulate(scheme, spec, &gpu, &cfg, None);
        let q = out.qos();
        println!(
            "{:<12} {:>4} {:>4} {:>12} {:>12} {:>7.1} {:>5} {:>5.2} {:>8.1}",
            scheme.label(),
            q.admitted,
            q.rejected,
            q.p50,
            q.p99,
            q.miss_rate * 100.0,
            q.shed_frames,
            q.min_scale,
            q.goodput * 100.0
        );
    }
    Ok(())
}

/// Where the cluster tables land (repo-relative). Like `serve.csv`, they
/// hold capacity-search results whose granularity shifts with `--scale`,
/// so they stay out of the golden digest; `tests/prop_cluster.rs` pins
/// their determinism instead.
const CLUSTER_CSV: &str = "results/cluster.csv";
/// Placement shoot-out companion table of [`CLUSTER_CSV`].
const CLUSTER_POLICY_CSV: &str = "results/cluster_policy.csv";
/// Chaos-sweep goodput grid (scenario × severity × policy).
const CHAOS_CSV: &str = "results/chaos.csv";

/// `figures -- cluster`: the fleet-capacity experiment. Prints the
/// capacity-vs-N table and the placement shoot-out, enforcing the
/// acceptance gates: N=4 scaling efficiency ≥ 0.9 on every workload, and
/// affinity packing strictly above least-loaded on every shared-stream
/// mix. Full-scale runs refresh `results/cluster.csv` and
/// `results/cluster_policy.csv`; scaled smokes validate without writing.
fn run_cluster(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ClusterConfig::default();
    let table = cluster_scale_table(specs, &gpu, &cfg);
    validate_table(&table)?;
    println!("{table}");
    for (label, _) in &table.rows {
        let eff =
            table.value(label, "eff(4)").ok_or_else(|| format!("{label}: missing eff(4) cell"))?;
        if eff < 0.9 {
            return Err(format!("{label}: N=4 scaling efficiency {eff:.3} below the 0.9 gate"));
        }
    }
    let policy = cluster_policy_table(specs, &gpu, &cfg);
    validate_table(&policy)?;
    println!("{policy}");
    for (label, _) in &policy.rows {
        let ll = policy
            .value(label, "least-loaded")
            .ok_or_else(|| format!("{label}: missing least-loaded cell"))?;
        let af = policy
            .value(label, "affinity")
            .ok_or_else(|| format!("{label}: missing affinity cell"))?;
        if af <= ll {
            return Err(format!(
                "{label}: affinity capacity {af} does not strictly beat least-loaded {ll}"
            ));
        }
    }
    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(CLUSTER_CSV, table.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(CLUSTER_POLICY_CSV, policy.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {CLUSTER_CSV} and {CLUSTER_POLICY_CSV}");
    }
    if let Some(dir) = csv_dir {
        for t in [&table, &policy] {
            let path = format!("{dir}/{}.csv", t.id);
            std::fs::write(&path, t.to_csv()).map_err(|e| e.to_string())?;
            println!("  wrote {path}");
        }
    }
    Ok(())
}

/// `figures -- chaos`: the robustness headline. Sweeps every fault
/// (scenario × severity) cell against every placement policy on a
/// shared-stream mix of the first two workloads, resilient router vs. the
/// retry-free/no-migration baseline on identical seeded faults, and
/// enforces the acceptance gate: resilient goodput strictly higher in
/// every fault cell, arms exactly equal fault-free.
fn run_chaos(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    if specs.is_empty() {
        return Err("chaos sweep needs at least one workload".into());
    }
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ClusterConfig::default();
    let mix: Vec<(ServeScheme, BenchmarkSpec)> =
        specs[..specs.len().min(2)].iter().map(|s| (ServeScheme::OoVr, s.clone())).collect();
    let (table, cells) = chaos_table(&mix, &gpu, &cfg);
    validate_table(&table)?;
    println!("{table}");
    let mut tightest: Option<&ChaosCell> = None;
    for c in &cells {
        if c.severity == 0.0 {
            if (c.resilient - c.baseline).abs() > 1e-12 {
                return Err(format!(
                    "fault-free {} arms diverge: resilient {} vs baseline {}",
                    c.policy, c.resilient, c.baseline
                ));
            }
            continue;
        }
        if c.resilient <= c.baseline {
            return Err(format!(
                "{}/{:.2}/{}: resilient goodput {:.4} does not strictly beat baseline {:.4} \
                 (fault seed {})",
                c.scenario, c.severity, c.policy, c.resilient, c.baseline, c.seed
            ));
        }
        if tightest.is_none_or(|t| c.resilient - c.baseline < t.resilient - t.baseline) {
            tightest = Some(c);
        }
    }
    if let Some(t) = tightest {
        println!(
            "  tightest fault cell {}/{:.2}/{}: resilient {:.4} vs baseline {:.4}",
            t.scenario, t.severity, t.policy, t.resilient, t.baseline
        );
    }
    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(CHAOS_CSV, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {CHAOS_CSV}");
    }
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{}.csv", table.id);
        std::fs::write(&path, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }
    Ok(())
}

/// Where the temporal-reuse tables land (repo-relative). Capacity-search
/// and trajectory-average cells shift granularity with `--scale`, so like
/// `serve.csv` they stay out of the golden digest; `tests/prop_temporal.rs`
/// pins temporal determinism instead.
const TEMPORAL_CSV: &str = "results/temporal.csv";
/// Per-frame cost companion table of [`TEMPORAL_CSV`].
const TEMPORAL_COST_CSV: &str = "results/temporal_cost.csv";
/// Capacity frontier (plain OO-VR vs OO-VR+temporal).
const TEMPORAL_FRONTIER_CSV: &str = "results/temporal_frontier.csv";

/// Reuse thresholds (projected-motion pixels) swept by `figures -- temporal`.
const TEMPORAL_THRESHOLDS: &[f64] = &[0.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Warm frames of the reference trajectory each sweep cell averages over.
const TEMPORAL_REF_FRAMES: u32 = 64;

/// The threshold-sweep tables: per workload, the mean object-reuse ratio
/// (percent) and the mean warm-frame cost relative to a full re-render
/// (percent), each averaged over [`TEMPORAL_REF_FRAMES`] frames of the
/// default-seed reference trajectory.
fn temporal_sweep_tables(specs: &[BenchmarkSpec]) -> Result<(FigureTable, FigureTable), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ServeConfig::default();
    let columns: Vec<String> = TEMPORAL_THRESHOLDS.iter().map(|t| format!("T={t}")).collect();
    let mut reuse_rows = Vec::new();
    let mut cost_rows = Vec::new();
    for spec in specs {
        let stream = cost_stream(ServeScheme::OoVrTemporal, spec, &gpu);
        let profile = stream
            .temporal
            .as_ref()
            .ok_or_else(|| format!("{}: no temporal profile", spec.name))?;
        let steady = profile.steady_cycles().max(1) as f64;
        let mut reuse_vals = Vec::with_capacity(TEMPORAL_THRESHOLDS.len());
        let mut cost_vals = Vec::with_capacity(TEMPORAL_THRESHOLDS.len());
        for &threshold in TEMPORAL_THRESHOLDS {
            let mut traj = PoseTrajectory::new(cfg.seed);
            let mut prev = traj.current();
            let (mut ratio, mut cost) = (0.0f64, 0.0f64);
            for _ in 0..TEMPORAL_REF_FRAMES {
                let cur = traj.step();
                let d = profile.decide(&prev, &cur, threshold);
                ratio += d.reuse_ratio();
                cost += d.apply(profile.steady_cycles().max(1)) as f64;
                prev = cur;
            }
            let frames = f64::from(TEMPORAL_REF_FRAMES);
            reuse_vals.push(100.0 * ratio / frames);
            cost_vals.push(100.0 * cost / frames / steady);
        }
        reuse_rows.push((spec.name.clone(), reuse_vals));
        cost_rows.push((spec.name.clone(), cost_vals));
    }
    let reuse = FigureTable {
        id: "temporal",
        title: "Temporal reuse: mean object-reuse ratio (%) vs threshold (pixels)".into(),
        columns: columns.clone(),
        rows: reuse_rows,
    };
    let cost = FigureTable {
        id: "temporal_cost",
        title: "Temporal reuse: mean warm-frame cost (% of full re-render) vs threshold".into(),
        columns,
        rows: cost_rows,
    };
    Ok((reuse, cost))
}

/// The capacity frontier: serving capacity per workload under plain OO-VR
/// vs OO-VR with pose-correlated temporal reuse at the default threshold.
fn temporal_frontier_table(specs: &[BenchmarkSpec]) -> FigureTable {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ServeConfig::default();
    let cells: Vec<(&BenchmarkSpec, ServeScheme)> = specs
        .iter()
        .flat_map(|spec| [ServeScheme::OoVr, ServeScheme::OoVrTemporal].map(|s| (spec, s)))
        .collect();
    let vals = experiments::par_map(&cells, |&(spec, s)| capacity(s, spec, &gpu, &cfg) as f64);
    let rows = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (base, temporal) = (vals[2 * i], vals[2 * i + 1]);
            let gain = if base > 0.0 { temporal / base } else { 0.0 };
            (spec.name.clone(), vec![base, temporal, gain])
        })
        .collect();
    FigureTable {
        id: "temporal_frontier",
        title: format!(
            "Serving capacity frontier at T={} px: plain OO-VR vs OO-VR+temporal",
            oovr::DEFAULT_REUSE_THRESHOLD
        ),
        columns: vec!["OOVR".into(), "OOVR+temporal".into(), "gain".into()],
        rows,
    }
}

/// `figures -- temporal`: the pose-correlated temporal-reuse headline.
/// Prints the reuse-ratio and per-frame-cost threshold sweeps plus the
/// capacity frontier, enforcing the acceptance gates: at the default
/// threshold every workload reuses at least one object per frame on
/// average (reuse ratio > 0) and OO-VR+temporal holds strictly more
/// sessions than plain OO-VR. Full-scale runs refresh
/// `results/temporal*.csv`; scaled smokes validate without writing.
fn run_temporal(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let (reuse, cost) = temporal_sweep_tables(specs)?;
    validate_table(&reuse)?;
    validate_table(&cost)?;
    println!("{reuse}");
    println!("{cost}");
    let default_col = TEMPORAL_THRESHOLDS
        .iter()
        .position(|&t| t == oovr::DEFAULT_REUSE_THRESHOLD)
        .ok_or("default threshold missing from the sweep")?;
    for (label, vals) in &reuse.rows {
        if vals[default_col] <= 0.0 {
            return Err(format!(
                "{label}: no objects reuse at the default threshold \
                 (T={}, ratio {:.3}%)",
                oovr::DEFAULT_REUSE_THRESHOLD,
                vals[default_col]
            ));
        }
        // Monotone in the threshold: each sweep column reuses at least as
        // much as the previous one.
        for w in vals.windows(2) {
            if w[1] + 1e-12 < w[0] {
                return Err(format!("{label}: reuse ratio not monotone across thresholds"));
            }
        }
    }
    let frontier = temporal_frontier_table(specs);
    validate_table(&frontier)?;
    println!("{frontier}");
    for (label, _) in &frontier.rows {
        let base = frontier.value(label, "OOVR").ok_or_else(|| format!("{label}: no OOVR cell"))?;
        let temporal = frontier
            .value(label, "OOVR+temporal")
            .ok_or_else(|| format!("{label}: no OOVR+temporal cell"))?;
        if temporal <= base {
            return Err(format!(
                "{label}: temporal capacity {temporal} does not strictly beat plain OO-VR {base}"
            ));
        }
    }
    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(TEMPORAL_CSV, reuse.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(TEMPORAL_COST_CSV, cost.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(TEMPORAL_FRONTIER_CSV, frontier.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {TEMPORAL_CSV}, {TEMPORAL_COST_CSV} and {TEMPORAL_FRONTIER_CSV}");
    }
    if let Some(dir) = csv_dir {
        for t in [&reuse, &cost, &frontier] {
            let path = format!("{dir}/{}.csv", t.id);
            std::fs::write(&path, t.to_csv()).map_err(|e| e.to_string())?;
            println!("  wrote {path}");
        }
    }
    Ok(())
}

/// Where the serve-metrics table lands (repo-relative). Like `serve.csv`,
/// the cells shift with `--scale`, so it stays out of the golden digest;
/// `tests/prop_metrics.rs` pins metering determinism instead.
const METRICS_CSV: &str = "results/metrics.csv";
/// Prometheus exposition of the pinned metrics workload — the source of
/// the committed `results/metrics_golden.prom` the prop_metrics golden
/// test compares against (regenerate by copying this file over it).
const METRICS_PROM: &str = "results/metrics.prom";
/// Per-vsync-window counter time series of the same pinned workload.
const METRICS_WINDOWS_CSV: &str = "results/metrics_windows.csv";
/// Where the fleet health-gate table lands (repo-relative).
const HEALTH_CSV: &str = "results/health.csv";

/// The pinned workload behind `results/metrics.prom`: fixed scale and run
/// shape regardless of `--scale`, so the exposition is byte-stable and
/// golden-testable.
fn pinned_metrics_registry() -> oovr_metrics::Registry {
    let spec = oovr_scene::benchmarks::hl2_640().scaled(0.05);
    let cfg = ServeConfig { sessions: 6, frames_per_session: 8, ..ServeConfig::default() };
    let mut reg = oovr_metrics::Registry::new(cfg.vsync_cycles);
    simulate_metered(
        ServeScheme::OoVr,
        &spec,
        &oovr_gpu::GpuConfig::default(),
        &cfg,
        None,
        Some(&mut reg),
    );
    reg
}

/// `figures -- metrics`: one metered single-server OO-VR run per workload
/// (admissions, frames, latency quantiles, miss and shed rates), plus the
/// Prometheus exposition of the pinned workload. Full-scale runs refresh
/// `results/metrics.csv`; the exposition is scale-independent and is
/// always rewritten.
fn run_metrics(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ServeConfig::default();
    let (table, _regs) = metrics_table(specs, &gpu, &cfg);
    validate_table(&table)?;
    println!("{table}");
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    if scale >= 1.0 {
        std::fs::write(METRICS_CSV, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {METRICS_CSV}");
    }
    let pinned = pinned_metrics_registry();
    let prom = oovr_metrics::export::prometheus(&pinned);
    std::fs::write(METRICS_PROM, &prom).map_err(|e| e.to_string())?;
    println!("  wrote {METRICS_PROM} ({} lines, pinned workload)", prom.lines().count());
    let windows = oovr_metrics::export::window_csv(&pinned);
    std::fs::write(METRICS_WINDOWS_CSV, &windows).map_err(|e| e.to_string())?;
    println!(
        "  wrote {METRICS_WINDOWS_CSV} ({} rows, pinned workload)",
        windows.lines().count().saturating_sub(1)
    );
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{}.csv", table.id);
        std::fs::write(&path, table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }
    Ok(())
}

/// `figures -- health`: the fleet health gate. Per workload, re-creates
/// the chaos operating point under the resilient router and evaluates the
/// SLO error budgets nominal and under the severity-1.0 link-down fault.
/// Fails loudly — listing every exhausted budget — if any aggregate row
/// busts, which is exactly where the resilient router is supposed to win.
fn run_health(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ClusterConfig::default();
    let (table, cells) = health_table(specs, &gpu, &cfg);
    validate_table(&table)?;
    println!("{table}");
    let mut busted: Vec<String> = Vec::new();
    for cell in &cells {
        for (run, rows) in [("nominal", &cell.nominal), ("link-down", &cell.faulted)] {
            for e in rows.iter().filter(|e| e.label == "*" && !e.healthy) {
                busted.push(format!(
                    "{}/{run}: {} achieved {:.4} > target {:.4} (budget {:.2}x, burn \
                     fast/slow {:.2}/{:.2})",
                    cell.workload,
                    e.slo,
                    e.achieved,
                    e.target,
                    e.budget_consumed,
                    e.burn_fast,
                    e.burn_slow
                ));
            }
        }
    }
    if !busted.is_empty() {
        return Err(format!(
            "health gate FAILED — {} exhausted error budget(s):\n  {}",
            busted.len(),
            busted.join("\n  ")
        ));
    }
    println!(
        "  health gate passed: {} workloads hold every aggregate budget (worst {:.2}x)",
        cells.len(),
        cells.iter().map(|c| c.worst_budget()).fold(0.0, f64::max)
    );

    // The edge tier's SLO catalogue rides the same gate: every workload
    // must hold its motion-to-photon, missed-vsync, and reprojection
    // budgets both nominal and under the seed-scanned link-down plan.
    let edge_cfg = EdgeConfig::default();
    let (edge_table, edge_cells) = edge_health_table(specs, &gpu, &edge_cfg);
    validate_table(&edge_table)?;
    println!("{edge_table}");
    let mut edge_busted: Vec<String> = Vec::new();
    for cell in &edge_cells {
        for (run, rows) in [("nominal", &cell.nominal), ("link-down", &cell.faulted)] {
            for e in rows.iter().filter(|e| !e.healthy) {
                edge_busted.push(format!(
                    "{}/{run}: {} achieved {:.4} > target {:.4} (budget {:.2}x, fault seed {})",
                    cell.workload, e.slo, e.achieved, e.target, e.budget_consumed, cell.fault_seed
                ));
            }
        }
    }
    if !edge_busted.is_empty() {
        return Err(format!(
            "edge health gate FAILED — {} exhausted error budget(s):\n  {}",
            edge_busted.len(),
            edge_busted.join("\n  ")
        ));
    }
    println!(
        "  edge health gate passed: {} workloads hold every edge budget (worst {:.2}x)",
        edge_cells.len(),
        edge_cells.iter().map(|c| c.worst_budget()).fold(0.0, f64::max)
    );

    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(HEALTH_CSV, table.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(EDGE_HEALTH_CSV, edge_table.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {HEALTH_CSV} and {EDGE_HEALTH_CSV}");
    }
    if let Some(dir) = csv_dir {
        for t in [&table, &edge_table] {
            let path = format!("{dir}/{}.csv", t.id);
            std::fs::write(&path, t.to_csv()).map_err(|e| e.to_string())?;
            println!("  wrote {path}");
        }
    }
    Ok(())
}

/// Where the split-rendering tables land (repo-relative). Like the
/// cluster and chaos CSVs they stay out of the golden digest: the chaos
/// cells come from seed-scanned fault plans and the ladder/health cells
/// fold histogram quantiles and scan-dependent miss rates, all of which
/// shift granularity with `--scale`. Edge determinism is pinned by
/// `tests/prop_edge.rs` (degenerate bit-identity + byte-identical
/// replay) instead of the fixed-scale digest.
const EDGE_LADDER_CSV: &str = "results/edge_ladder.csv";
/// Link-down chaos grid (workload × severity, ATW vs bare client).
const EDGE_CHAOS_CSV: &str = "results/edge_chaos.csv";
/// Scenario-coverage companion table of [`EDGE_CHAOS_CSV`].
const EDGE_SCENARIOS_CSV: &str = "results/edge_scenarios.csv";
/// Edge SLO health-gate table.
const EDGE_HEALTH_CSV: &str = "results/edge_health.csv";

/// `figures -- edge`: the split client–edge rendering experiment. Prints
/// the motion-to-photon latency ladder, the link-down chaos sweep (ATW
/// vs reprojection-free client), and the scenario-coverage table,
/// enforcing the acceptance gates:
///
/// 1. over the degenerate link the split run folds to *exactly* the
///    local-serving QoS on every workload;
/// 2. motion-to-photon p99 is monotone non-decreasing in link latency on
///    every workload;
/// 3. under link-down chaos the ATW client strictly beats the
///    reprojection-free client on miss rate in every fault cell.
fn run_edge(specs: &[BenchmarkSpec], scale: f64, csv_dir: Option<&str>) -> Result<(), String> {
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = EdgeConfig::default();

    // Gate 1: the ideal link adds nothing — split serving degenerates to
    // local serving bit-for-bit.
    for spec in specs {
        let local = simulate(ServeScheme::OoVr, spec, &gpu, &cfg.serve, None);
        let split = simulate_edge(
            ServeScheme::OoVr,
            spec,
            &gpu,
            &EdgeConfig::degenerate(cfg.serve.clone()),
            None,
        );
        if split.qos() != local.qos() {
            return Err(format!(
                "{}: degenerate-link QoS diverges from local serving ({:?} vs {:?})",
                spec.name,
                split.qos(),
                local.qos()
            ));
        }
    }
    println!("  degenerate-link gate passed: split == local on {} workloads", specs.len());

    // Gate 2: the latency ladder. Delivered photons shift pointwise with
    // propagation latency while the ATW/dark anchors are constants, so
    // p99 must never decrease up the ladder.
    let (ladder, ladders) = edge_ladder_table(specs, &gpu, &cfg);
    validate_table(&ladder)?;
    println!("{ladder}");
    for (spec, rungs) in specs.iter().zip(&ladders) {
        for w in rungs.windows(2) {
            if w[1].1.p99 < w[0].1.p99 {
                return Err(format!(
                    "{}: motion-to-photon p99 fell from {} to {} when link latency rose from \
                     {} to {} cycles",
                    spec.name, w[0].1.p99, w[1].1.p99, w[0].0, w[1].0
                ));
            }
        }
    }

    // Gate 3: link-down chaos, ATW vs bare client on identical
    // deliveries. Every cell's seed-scanned plan must bite (a lost frame
    // and a reprojection) and ATW must strictly win on miss rate.
    let (chaos, cells) = edge_chaos_table(specs, &gpu, &cfg);
    validate_table(&chaos)?;
    println!("{chaos}");
    let mut tightest: Option<&EdgeChaosCell> = None;
    for c in &cells {
        if c.lost == 0 || c.reprojected == 0 {
            return Err(format!(
                "{} @{:.1}: settled fault seed {} lost {} frames and reprojected {} — the \
                 chaos cell tests nothing",
                c.workload, c.severity, c.fault_seed, c.lost, c.reprojected
            ));
        }
        if c.miss_atw >= c.miss_bare {
            return Err(format!(
                "{} @{:.1}: ATW miss rate {:.4} does not strictly beat the bare client's \
                 {:.4} (fault seed {})",
                c.workload, c.severity, c.miss_atw, c.miss_bare, c.fault_seed
            ));
        }
        if tightest.is_none_or(|t| c.miss_bare - c.miss_atw < t.miss_bare - t.miss_atw) {
            tightest = Some(c);
        }
    }
    if let Some(t) = tightest {
        println!(
            "  tightest chaos cell {} @{:.1}: ATW miss {:.4} vs bare {:.4}",
            t.workload, t.severity, t.miss_atw, t.miss_bare
        );
    }

    // Scenario coverage on the first workload: every fault class
    // compiles onto the link and shows up in the client's accounting.
    let first = specs.first().ok_or("edge experiment needs at least one workload")?;
    let (scenarios, _) = edge_scenario_table(first, &gpu, &cfg);
    validate_table(&scenarios)?;
    println!("{scenarios}");

    if scale >= 1.0 {
        std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
        std::fs::write(EDGE_LADDER_CSV, ladder.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(EDGE_CHAOS_CSV, chaos.to_csv()).map_err(|e| e.to_string())?;
        std::fs::write(EDGE_SCENARIOS_CSV, scenarios.to_csv()).map_err(|e| e.to_string())?;
        println!("  wrote {EDGE_LADDER_CSV}, {EDGE_CHAOS_CSV} and {EDGE_SCENARIOS_CSV}");
    }
    if let Some(dir) = csv_dir {
        for t in [&ladder, &chaos, &scenarios] {
            let path = format!("{dir}/{}.csv", t.id);
            std::fs::write(&path, t.to_csv()).map_err(|e| e.to_string())?;
            println!("  wrote {path}");
        }
    }
    Ok(())
}

/// Directory trace artifacts land in (repo-relative).
const TRACE_DIR: &str = "results/traces";

/// Resolves a serving scheme by CLI name. `ServeScheme::parse` returns a
/// bare `None` on unknown labels; the CLI error must name every valid
/// choice, matching the unknown-workload error.
fn serve_scheme(name: &str) -> Result<ServeScheme, String> {
    ServeScheme::parse(name).ok_or_else(|| {
        let names: Vec<&str> = ServeScheme::ALL.iter().map(|s| s.cli_name()).collect();
        format!("unknown serve scheme {name:?} (expected one of: {})", names.join(" "))
    })
}

/// Resolves a trace scheme by CLI name.
fn trace_scheme(name: &str) -> Result<Box<dyn RenderScheme>, String> {
    Ok(match name {
        "baseline" => Box::new(Baseline::new()),
        "object" => Box::new(ObjectSfr::new()),
        "ooapp" => Box::new(oovr::OoApp::new()),
        "oovr" => Box::new(OoVr::new()),
        "oovr-res" => Box::new(OoVr::resilient()),
        other => {
            return Err(format!(
                "unknown trace scheme {other:?} (expected baseline|object|ooapp|oovr|oovr-res)"
            ))
        }
    })
}

/// Resolves a trace workload: `demo` is a fixed small scene (scale-independent
/// so traces are reproducible regardless of `--scale`); any Table 3 name runs
/// that benchmark at the requested scale.
fn trace_workload(name: &str, scale: f64) -> Result<BenchmarkSpec, String> {
    if name == "demo" {
        // The demo is a showcase scene tuned so the trace exercises every
        // event family. Its heavy-tailed object sizes (log-normal σ=2.5)
        // leave a few giant single-object batches straggling at the end of
        // the frame, which is exactly when idle GPMs trigger the steal path
        // — the Table 3 workloads balance so well under the Eq. 3 predictor
        // that fault-free steals essentially never fire there.
        let mut spec = BenchmarkSpec::new("demo", 160, 120, 96, 23);
        spec.personality.size_sigma = 2.5;
        spec.personality.tri_total = 60_000;
        return Ok(spec);
    }
    oovr_scene::benchmarks::all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .map(|s| if scale >= 1.0 { s } else { s.scaled(scale) })
        .ok_or_else(|| {
            let names: Vec<String> =
                oovr_scene::benchmarks::all().into_iter().map(|s| s.name).collect();
            format!("unknown workload {name:?} (expected demo or one of: {})", names.join(" "))
        })
}

/// Renders one traced frame and returns the three export artifacts
/// (chrome JSON, CSV timeline, flight digest) plus the report.
fn render_trace_artifacts(
    scheme_name: &str,
    workload: &str,
    scale: f64,
) -> Result<(String, String, String, oovr_gpu::FrameReport), String> {
    use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
    let spec = trace_workload(workload, scale)?;
    let scheme = trace_scheme(scheme_name)?;
    let cfg = oovr_gpu::GpuConfig::default();
    let scene = spec.build();
    let (report, rec) =
        scheme.render_frame_traced(&scene, &cfg, oovr_trace::TraceConfig::default());
    let rec = rec.ok_or_else(|| format!("scheme {scheme_name} does not support tracing"))?;
    let dropped = rec.dropped();
    let events = rec.into_events();
    if events.is_empty() {
        return Err(format!("trace of {scheme_name}/{workload} recorded no events"));
    }
    let json = chrome_trace(&events, cfg.n_gpms, dropped);
    let csv = csv_timeline(&events, dropped);
    let digest = flight_digest(&events, dropped);
    Ok((json, csv, digest, report))
}

/// `figures -- trace <scheme> <workload>`: renders one traced frame and
/// writes the Chrome trace JSON (Perfetto-loadable), per-frame CSV timeline,
/// and the compact flight digest into `results/traces/`.
fn run_trace(scheme_name: &str, workload: &str, scale: f64) -> Result<(), String> {
    if scheme_name == "serve" {
        return run_serve_trace(workload, scale);
    }
    if scheme_name == "cluster" {
        return run_cluster_trace(workload, scale);
    }
    if scheme_name == "temporal" {
        return run_temporal_trace(workload, scale);
    }
    if scheme_name == "edge" {
        return run_edge_trace(workload, scale);
    }
    // `trace serve-<scheme>` traces the serve scheduler under any serving
    // scheme; an unknown suffix errors with the full list of valid names.
    if let Some(name) = scheme_name.strip_prefix("serve-") {
        return run_serve_trace_scheme(serve_scheme(name)?, workload, scale);
    }
    let t0 = std::time::Instant::now();
    let (json, csv, digest, report) = render_trace_artifacts(scheme_name, workload, scale)?;
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| e.to_string())?;
    let stem = format!("{TRACE_DIR}/trace_{scheme_name}_{workload}");
    for (ext, body) in [("json", &json), ("csv", &csv), ("txt", &digest)] {
        std::fs::write(format!("{stem}.{ext}"), body).map_err(|e| e.to_string())?;
    }
    println!("== trace — {scheme_name} on {workload} in {:.1?} ==", t0.elapsed());
    println!(
        "frame {} cycles, composition {} cycles",
        report.frame_cycles, report.composition_cycles
    );
    print!("{digest}");
    println!("wrote {stem}.json / .csv / .txt");
    Ok(())
}

/// `figures -- trace serve <workload>`: runs a deliberately overloaded
/// serving experiment and writes its session-lifecycle timeline (admits,
/// rejects, frame spans, sheds, deadline misses) as the same three trace
/// artifacts the per-frame traces use. The vsync interval is derived from
/// the measured cost stream — the same construction as the scheduler's
/// shedding test — so every event family fires at any `--scale`, and the
/// artifacts stay deterministic.
fn run_serve_trace(workload: &str, scale: f64) -> Result<(), String> {
    run_serve_trace_scheme(ServeScheme::OoVrShed, workload, scale)
}

/// [`run_serve_trace`] under an explicit serving scheme (`figures -- trace
/// serve-<scheme> <workload>`). The overload construction is the same;
/// schemes that don't shed simply miss instead.
fn run_serve_trace_scheme(scheme: ServeScheme, workload: &str, scale: f64) -> Result<(), String> {
    use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
    let t0 = std::time::Instant::now();
    let spec = trace_workload(workload, scale)?;
    let gpu = oovr_gpu::GpuConfig::default();
    let stream = oovr_serve::cost_stream(scheme, &spec, &gpu);
    let (cold, steady) = (stream.cold().frame_cycles, stream.steady().frame_cycles);
    // V sits just above the 2-session admission bound (Eq. 3 predicts the
    // stream's mean frame cost, (cold+3·steady)/4): two sessions are
    // admitted, the rest rejected, and the two back-to-back cold warmups
    // (2·cold > V, since cold > steady) overload the first interval. A
    // shed floor of 0.95 cannot absorb that transient — the PA premium
    // makes cold·1.95 > V — so the same trace shows sheds *and* a
    // deadline miss before the steady state recovers.
    let vsync = (cold + 3 * steady) / 2 + 2;
    let cfg = ServeConfig {
        vsync_cycles: vsync,
        sessions: 6,
        frames_per_session: 12,
        mean_interarrival: 0,
        headroom: 1.0,
        resilience: oovr::ResilienceConfig {
            shed_step: 0.98,
            shed_floor: 0.95,
            ..oovr::ResilienceConfig::on()
        },
        ..ServeConfig::default()
    };
    let mut rec = oovr_trace::Recorder::new(oovr_trace::TraceConfig::default());
    let out = simulate(scheme, &spec, &gpu, &cfg, Some(&mut rec));
    let dropped = rec.dropped();
    let events = rec.into_events();
    if events.is_empty() {
        return Err(format!("serve trace of {workload} recorded no events"));
    }
    let json = chrome_trace(&events, gpu.n_gpms, dropped);
    let csv = csv_timeline(&events, dropped);
    let digest = flight_digest(&events, dropped);
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| e.to_string())?;
    // The default (shedding) serve trace keeps its historic artifact name;
    // explicit schemes get their CLI name in the stem.
    let stem = if scheme == ServeScheme::OoVrShed {
        format!("{TRACE_DIR}/trace_serve_{workload}")
    } else {
        format!("{TRACE_DIR}/trace_serve-{}_{workload}", scheme.cli_name())
    };
    for (ext, body) in [("json", &json), ("csv", &csv), ("txt", &digest)] {
        std::fs::write(format!("{stem}.{ext}"), body).map_err(|e| e.to_string())?;
    }
    let q = out.qos();
    println!(
        "== trace — serve ({}) on {}, overloaded at V={} cycles, in {:.1?} ==",
        scheme.label(),
        spec.name,
        cfg.vsync_cycles,
        t0.elapsed()
    );
    println!(
        "{} admitted, {} rejected; p99 {} cycles, {:.1}% missed vsync, {} shed frames, min \
         scale {:.2}",
        q.admitted,
        q.rejected,
        q.p99,
        q.miss_rate * 100.0,
        q.shed_frames,
        q.min_scale
    );
    print!("{digest}");
    println!("wrote {stem}.json / .csv / .txt");
    Ok(())
}

/// `figures -- trace cluster <workload>`: runs a small traced fleet under a
/// link-down fault that provably kills a server mid-run (seeds scanned like
/// the chaos sweep), so the artifacts always show the full cluster event
/// vocabulary — routes, retries, the server down/up edge, failovers, and
/// migrations — alongside the per-session frame spans.
fn run_cluster_trace(workload: &str, scale: f64) -> Result<(), String> {
    use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
    let t0 = std::time::Instant::now();
    let spec = trace_workload(workload, scale)?;
    let gpu = oovr_gpu::GpuConfig::default();
    let mix = vec![(ServeScheme::OoVr, spec.clone())];
    // Least-loaded placement spreads sessions across every server, so the
    // link-down victim always holds residents and the failover path shows
    // up in the timeline (affinity would pack them all off the victim).
    let mut cfg = ClusterConfig {
        sessions: 24,
        frames_per_session: 24,
        policy: Placement::LeastLoaded,
        ..ClusterConfig::default()
    };
    let v = cfg.vsync_cycles;
    let horizon = (cfg.arrival_intervals.saturating_sub(1) + cfg.frames_per_session) as u64 * v;
    let plan = (0..256u64)
        .map(|s| {
            oovr_gpu::FaultPlan::new(
                oovr_gpu::FaultScenario::LinkDown,
                0.8,
                cfg.seed.wrapping_add(s),
            )
            .with_horizon(horizon)
        })
        .find(|p| p.disturbs_servers(cfg.servers as usize, v))
        .ok_or("no link-down seed disturbs a server within the trace horizon")?;
    cfg.fault = Some(plan);
    let mut rec = oovr_trace::Recorder::new(oovr_trace::TraceConfig::default());
    let out = simulate_cluster(&mix, &gpu, &cfg, Some(&mut rec));
    let dropped = rec.dropped();
    let events = rec.into_events();
    if events.is_empty() {
        return Err(format!("cluster trace of {workload} recorded no events"));
    }
    if out.downs == 0 {
        return Err(format!("cluster trace of {workload} observed no server downs"));
    }
    if out.failovers == 0 {
        return Err(format!("cluster trace of {workload} exercised no failovers"));
    }
    let json = chrome_trace(&events, gpu.n_gpms, dropped);
    let csv = csv_timeline(&events, dropped);
    let digest = flight_digest(&events, dropped);
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| e.to_string())?;
    let stem = format!("{TRACE_DIR}/trace_cluster_{workload}");
    for (ext, body) in [("json", &json), ("csv", &csv), ("txt", &digest)] {
        std::fs::write(format!("{stem}.{ext}"), body).map_err(|e| e.to_string())?;
    }
    println!(
        "== trace — cluster ({} servers, link-down fault) on {} in {:.1?} ==",
        cfg.servers,
        spec.name,
        t0.elapsed()
    );
    println!(
        "{} admitted / {} rejected / {} evicted; {} downs, {} failovers, {} migrations, {} \
         retries; goodput {:.1}%, min scale {:.2}",
        out.admitted,
        out.rejected,
        out.evicted,
        out.downs,
        out.failovers,
        out.migrations,
        out.retries,
        out.goodput() * 100.0,
        out.min_scale
    );
    print!("{digest}");
    println!("wrote {stem}.json / .csv / .txt");
    Ok(())
}

/// `figures -- trace temporal <workload>`: runs a serving experiment under
/// `OOVR+temporal` at the default reuse threshold and writes its timeline
/// as the usual three trace artifacts. Fails unless pose-correlated reuse
/// actually fires (some object reused on some warm frame) — the smoke that
/// pins the temporal event family end to end through the exporters.
fn run_temporal_trace(workload: &str, scale: f64) -> Result<(), String> {
    use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
    let t0 = std::time::Instant::now();
    let spec = trace_workload(workload, scale)?;
    let gpu = oovr_gpu::GpuConfig::default();
    let cfg = ServeConfig { sessions: 4, frames_per_session: 12, ..ServeConfig::default() };
    let mut rec = oovr_trace::Recorder::new(oovr_trace::TraceConfig::default());
    let out = simulate(ServeScheme::OoVrTemporal, &spec, &gpu, &cfg, Some(&mut rec));
    let dropped = rec.dropped();
    let events = rec.into_events();
    if events.is_empty() {
        return Err(format!("temporal trace of {workload} recorded no events"));
    }
    let (mut frames, mut reused, mut rerendered, mut saved) = (0u64, 0u64, 0u64, 0u64);
    for e in &events {
        if let oovr_trace::TraceEvent::TemporalReuse {
            reused: r, rerendered: rr, saved: s, ..
        } = e
        {
            frames += 1;
            reused += u64::from(*r);
            rerendered += u64::from(*rr);
            saved += *s;
        }
    }
    if frames == 0 {
        return Err(format!("temporal trace of {workload} emitted no TemporalReuse events"));
    }
    if reused == 0 {
        return Err(format!(
            "temporal trace of {workload} reused no objects at the default threshold"
        ));
    }
    let json = chrome_trace(&events, gpu.n_gpms, dropped);
    let csv = csv_timeline(&events, dropped);
    let digest = flight_digest(&events, dropped);
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| e.to_string())?;
    let stem = format!("{TRACE_DIR}/trace_temporal_{workload}");
    for (ext, body) in [("json", &json), ("csv", &csv), ("txt", &digest)] {
        std::fs::write(format!("{stem}.{ext}"), body).map_err(|e| e.to_string())?;
    }
    let q = out.qos();
    println!(
        "== trace — temporal ({}) on {} in {:.1?} ==",
        ServeScheme::OoVrTemporal.label(),
        spec.name,
        t0.elapsed()
    );
    println!(
        "{} warm frames priced by pose delta: {} objects reused, {} re-rendered, {} cycles \
         saved; goodput {:.1}%",
        frames,
        reused,
        rerendered,
        saved,
        q.goodput * 100.0
    );
    print!("{digest}");
    println!("wrote {stem}.json / .csv / .txt");
    Ok(())
}

/// `figures -- trace edge <workload>`: runs a split client–edge
/// experiment over a lossy, link-down-faulted link and writes its
/// timeline — session lifecycle, frame sends, deliveries, losses,
/// reprojections, dark vsyncs — as the usual three trace artifacts.
/// Fault seeds are scanned like the chaos sweep; the run fails unless
/// at least one `FrameLost` *and* one `FrameReprojected` event fire, so
/// the artifacts always show the link loss path and the ATW cover path
/// end to end through the exporters.
fn run_edge_trace(workload: &str, scale: f64) -> Result<(), String> {
    use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
    let t0 = std::time::Instant::now();
    let spec = trace_workload(workload, scale)?;
    let gpu = oovr_gpu::GpuConfig::default();
    let base = EdgeConfig {
        serve: ServeConfig { sessions: 6, frames_per_session: 12, ..ServeConfig::default() },
        link: LinkConfig { base_loss: 0.05, ..LinkConfig::default() },
        client: oovr_edge::ClientConfig::default(),
    };
    let mut settled: Option<(oovr_edge::EdgeOutcome, oovr_trace::Recorder)> = None;
    for s in 0..256u64 {
        let plan = oovr_gpu::FaultPlan::new(
            oovr_gpu::FaultScenario::LinkDown,
            0.8,
            base.serve.seed.wrapping_add(s),
        );
        let cfg = EdgeConfig {
            link: LinkConfig { fault: Some(plan), ..base.link.clone() },
            ..base.clone()
        };
        let mut rec = oovr_trace::Recorder::new(oovr_trace::TraceConfig::default());
        let out = simulate_edge(ServeScheme::OoVr, &spec, &gpu, &cfg, Some(&mut rec));
        let lost =
            rec.events().filter(|e| matches!(e, oovr_trace::TraceEvent::FrameLost { .. })).count();
        let reprojected = rec
            .events()
            .filter(|e| matches!(e, oovr_trace::TraceEvent::FrameReprojected { .. }))
            .count();
        if lost >= 1 && reprojected >= 1 {
            settled = Some((out, rec));
            break;
        }
    }
    let (out, rec) = settled.ok_or_else(|| {
        format!(
            "edge trace of {workload}: no fault seed in 256 produced both a FrameLost and a \
             FrameReprojected event"
        )
    })?;
    let dropped = rec.dropped();
    let events = rec.into_events();
    if events.is_empty() {
        return Err(format!("edge trace of {workload} recorded no events"));
    }
    let json = chrome_trace(&events, gpu.n_gpms, dropped);
    let csv = csv_timeline(&events, dropped);
    let digest = flight_digest(&events, dropped);
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| e.to_string())?;
    let stem = format!("{TRACE_DIR}/trace_edge_{workload}");
    for (ext, body) in [("json", &json), ("csv", &csv), ("txt", &digest)] {
        std::fs::write(format!("{stem}.{ext}"), body).map_err(|e| e.to_string())?;
    }
    let q = out.qos();
    let mtp = out.motion_to_photon();
    println!(
        "== trace — edge (split rendering, link-down fault) on {} in {:.1?} ==",
        spec.name,
        t0.elapsed()
    );
    println!(
        "{} admitted / {} rejected ({} by the link); motion-to-photon p50/p99 {}/{} cycles, \
         {:.1}% missed vsync",
        q.admitted,
        q.rejected,
        out.link_rejected,
        mtp.p50,
        mtp.p99,
        q.miss_rate * 100.0
    );
    print!("{digest}");
    println!("wrote {stem}.json / .csv / .txt");
    Ok(())
}

/// `figures -- trace-check`: CI smoke for the flight recorder. Renders the
/// demo workload under OO-VR twice, requires byte-identical artifacts,
/// parses the Chrome JSON with the hand-rolled parser, and asserts the
/// structural invariants the acceptance bar names: one span track per GPM,
/// PA and steal instant events present, per-track timestamps monotone.
fn run_trace_check(scale: f64) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let (json1, csv1, digest1, _) = render_trace_artifacts("oovr", "demo", scale)?;
    let (json2, csv2, digest2, _) = render_trace_artifacts("oovr", "demo", scale)?;
    if json1 != json2 || csv1 != csv2 || digest1 != digest2 {
        return Err("trace artifacts differ between identical invocations".into());
    }
    let n_gpms = oovr_gpu::GpuConfig::default().n_gpms;
    let doc = oovr_trace::json::parse(&json1).map_err(|e| format!("chrome JSON invalid: {e}"))?;
    let stats = oovr_trace::json::validate_chrome_trace(&doc, n_gpms)?;
    if stats.gpm_span_tracks < n_gpms {
        return Err(format!(
            "expected batch spans on all {n_gpms} GPM tracks, saw {}",
            stats.gpm_span_tracks
        ));
    }
    if stats.pa_events == 0 {
        return Err("expected PA pre-allocation instant events in the demo trace".into());
    }
    if stats.steal_events == 0 {
        return Err("expected steal instant events in the demo trace".into());
    }
    // An untraced render of the same scene must agree with the traced one —
    // tracing observes, never perturbs.
    let spec = trace_workload("demo", scale)?;
    let scene = spec.build();
    let cfg = oovr_gpu::GpuConfig::default();
    let untraced = trace_scheme("oovr")?.render_frame(&scene, &cfg);
    let (traced, _) =
        trace_scheme("oovr")?.render_frame_traced(&scene, &cfg, oovr_trace::TraceConfig::default());
    if traced.frame_cycles != untraced.frame_cycles
        || traced.composition_cycles != untraced.composition_cycles
        || traced.inter_gpm_bytes() != untraced.inter_gpm_bytes()
    {
        return Err(format!(
            "traced render diverged from untraced: {} vs {} cycles",
            traced.frame_cycles, untraced.frame_cycles
        ));
    }
    println!("== trace-check — OK in {:.1?} ==", t0.elapsed());
    println!(
        "{} events ({} spans, {} instants, {} counters) on {} GPM tracks; {} PA, {} steals",
        stats.events,
        stats.spans,
        stats.instants,
        stats.counters,
        stats.gpm_span_tracks,
        stats.pa_events,
        stats.steal_events
    );
    Ok(())
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), or `None`
/// where `/proc` is unavailable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `figures -- perf`: the simulator-performance harness. Times the fig15
/// scheme comparison per workload and end-to-end plus the resilience fault
/// sweep, and writes `BENCH_substrate.json` (wall-clock seconds per
/// workload, totals, peak RSS) so perf regressions in the substrate show up
/// as numbers, not vibes.
fn run_perf(scale: f64) {
    let specs = experiments::paper_workloads(scale);
    println!("== perf — fig15 wall-clock per workload (scale {scale}) ==");
    let mut rows = Vec::new();
    for spec in &specs {
        let t0 = std::time::Instant::now();
        let table = fig15(std::slice::from_ref(spec));
        let dt = t0.elapsed().as_secs_f64();
        println!("{:<10} {:>8.2}s  ({} rows)", spec.name, dt, table.rows.len());
        rows.push((spec.name.clone(), dt));
    }
    // The per-workload loop above warmed the render cache, so one more
    // full-grid pass measures only the residual (assembly + cache lookups).
    // `total` — the comparable end-to-end fig15 cost from a cold cache — is
    // the per-workload sum plus that residual.
    let t0 = std::time::Instant::now();
    let _ = fig15(&specs);
    let residual = t0.elapsed().as_secs_f64();
    println!("{:<10} {residual:>8.2}s  (all workloads, warmed grid residual)", "full");
    let total = rows.iter().map(|(_, dt)| dt).sum::<f64>() + residual;
    println!("{:<10} {total:>8.2}s  (cold-cache grid total)", "total");

    // Per-table breakdown over the full fault-free set. Tables share scenes
    // and frame renders through the render cache, so each entry is the
    // table's *marginal* cost in this run order — the first table that needs
    // a render pays for it, later tables reuse it.
    println!("== perf — per-table wall-clock (marginal, shared render cache) ==");
    let mut tables = Vec::new();
    for id in VERIFY_IDS {
        let t0 = std::time::Instant::now();
        let _ = build_table(id, &specs).expect("verify ids are known");
        let dt = t0.elapsed().as_secs_f64();
        // A ~0s entry did no rendering: every frame it needs was already
        // memoized by an earlier table in this run order.
        let memoized = if dt < 0.005 { "  (memoized)" } else { "" };
        println!("{id:<16} {dt:>8.2}s{memoized}");
        tables.push((*id, dt));
    }
    let t0 = std::time::Instant::now();
    let _ = resilience(&specs);
    let resilience_s = t0.elapsed().as_secs_f64();
    println!("{:<16} {resilience_s:>8.2}s  (fault sweep, all workloads)", "resilience");
    tables.push(("resilience", resilience_s));
    let t0 = std::time::Instant::now();
    let _ = capacity_table(&specs, &oovr_gpu::GpuConfig::default(), &ServeConfig::default());
    let serve_s = t0.elapsed().as_secs_f64();
    println!("{:<16} {serve_s:>8.2}s  (serving capacity, all workloads)", "serve");
    tables.push(("serve", serve_s));
    // The serve timing above memoized every cost stream, so this entry is
    // the marginal cost of cluster scheduling itself — 36 capacity searches
    // (9 workloads × N ∈ {1,2,4,8}) over the fleet simulator.
    let t0 = std::time::Instant::now();
    let _ = cluster_scale_table(&specs, &oovr_gpu::GpuConfig::default(), &ClusterConfig::default());
    let cluster_s = t0.elapsed().as_secs_f64();
    println!("{:<16} {cluster_s:>8.2}s  (cluster capacity vs N, all workloads)", "cluster");
    tables.push(("cluster", cluster_s));
    // The temporal entry prices the threshold sweep plus the two-scheme
    // capacity frontier; its OO-VR streams were memoized above, so the
    // marginal cost is the temporal profile renders and the probe math.
    let t0 = std::time::Instant::now();
    let _ = temporal_sweep_tables(&specs);
    let _ = temporal_frontier_table(&specs);
    let temporal_s = t0.elapsed().as_secs_f64();
    println!("{:<16} {temporal_s:>8.2}s  (temporal sweep + frontier, all workloads)", "temporal");
    tables.push(("temporal", temporal_s));
    // The edge entry prices the motion-to-photon latency ladder (five
    // link-latency rungs per workload over memoized cost streams) — the
    // deterministic, scan-free core of `figures -- edge`.
    let t0 = std::time::Instant::now();
    let _ = edge_ladder_table(&specs, &oovr_gpu::GpuConfig::default(), &EdgeConfig::default());
    let edge_s = t0.elapsed().as_secs_f64();
    println!("{:<16} {edge_s:>8.2}s  (motion-to-photon ladder, all workloads)", "edge");
    tables.push(("edge", edge_s));
    let cache = oovr::cache::stats();
    println!(
        "render cache     {} scene builds, {} frame hits / {} misses",
        cache.scene_builds, cache.frame_hits, cache.frame_misses
    );
    let serve_cache = oovr_serve::serve_cache_stats();
    println!(
        "serve streams    {} stream hits / {} misses",
        serve_cache.stream_hits, serve_cache.stream_misses
    );

    // Batched-substrate counters: how much per-access bookkeeping the batch
    // memory paths folded away, and how many raster tiles skipped per-pixel
    // work. These explain the wall-clocks above; a regression (run lengths
    // collapsing toward 1, accepted tiles toward 0) shows up here first.
    let bs = oovr_mem::batch_stats();
    println!(
        "mem batches      {} batches, {} accesses, {} folded (mean run {:.2})",
        bs.batches,
        bs.ops,
        bs.folded,
        bs.mean_run_len()
    );
    // Tripwire (DESIGN.md §12): the fold counter has been exactly 0 across
    // every measured run — batched accesses never coalesce under the current
    // dedup. If an upstream change makes folds land, the batch-memory cost
    // model shifts and every wall-clock above needs re-baselining.
    if bs.folded > 0 {
        eprintln!(
            "WARNING: mem batch fold counter tripped — {} folds across {} accesses (was 0 in \
             every baseline run). An upstream dedup/merge change altered the batch-memory \
             path; re-validate the cost model and refresh perf baselines before trusting \
             these numbers.",
            bs.folded, bs.ops
        );
    }
    let ts = oovr_gpu::raster_tile_stats();
    println!(
        "raster tiles     {} accepted, {} rejected, {} per-pixel",
        ts.accepted, ts.rejected, ts.partial
    );

    // Flight-recorder overhead: the same OO-VR frame rendered untraced vs
    // with the recorder attached. Traced renders bypass the render cache,
    // so both arms do real work every repetition. The overhead is ~0.2%
    // of an ~18 ms frame, far below run-to-run host noise, so the arms
    // are interleaved and each reports its minimum — the noise floor is
    // stable and the traced floor carries the true recording cost (at
    // 3 reps × 3 decimals of mean-of-loop the figure used to round to a
    // flat 0.000).
    let demo = trace_workload("demo", scale).expect("demo workload exists");
    let demo_scene = demo.build();
    let demo_cfg = oovr_gpu::GpuConfig::default();
    let reps = 20;
    let mut untraced_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let _ = OoVr::new().render_frame(&demo_scene, &demo_cfg);
        untraced_s = untraced_s.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        let _ = OoVr::new().render_frame_traced(
            &demo_scene,
            &demo_cfg,
            oovr_trace::TraceConfig::default(),
        );
        traced_s = traced_s.min(t0.elapsed().as_secs_f64());
    }
    let trace_overhead_s = (traced_s - untraced_s).max(0.0);
    println!(
        "trace overhead   {untraced_s:.6}s untraced vs {traced_s:.6}s traced per demo frame \
         (+{trace_overhead_s:.6}s)"
    );
    // Metrics overhead, same contract and same min-of-interleaved-reps
    // method: an unmetered serve run vs the same run with a registry
    // attached. A warmup run pays the cost-stream cache miss before
    // either arm is timed, so the delta isolates the Option-gated
    // metering hooks themselves; the runs are short (tens of
    // microseconds), hence the higher repetition count.
    let demo_serve = ServeConfig { sessions: 6, frames_per_session: 8, ..ServeConfig::default() };
    let serve_reps = 200;
    let _ = simulate(ServeScheme::OoVr, &demo, &demo_cfg, &demo_serve, None);
    let mut unmetered_s = f64::INFINITY;
    let mut metered_s = f64::INFINITY;
    for _ in 0..serve_reps {
        let t0 = std::time::Instant::now();
        let _ = simulate(ServeScheme::OoVr, &demo, &demo_cfg, &demo_serve, None);
        unmetered_s = unmetered_s.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        let mut reg = oovr_metrics::Registry::new(demo_serve.vsync_cycles);
        let _ = simulate_metered(
            ServeScheme::OoVr,
            &demo,
            &demo_cfg,
            &demo_serve,
            None,
            Some(&mut reg),
        );
        metered_s = metered_s.min(t0.elapsed().as_secs_f64());
    }
    let metrics_overhead_s = (metered_s - unmetered_s).max(0.0);
    println!(
        "metrics overhead {unmetered_s:.6}s unmetered vs {metered_s:.6}s metered per serve run \
         (+{metrics_overhead_s:.6}s)"
    );
    let rss = peak_rss_kb();
    if let Some(kb) = rss {
        println!("peak RSS   {:>8.1} MiB", kb as f64 / 1024.0);
    }

    let mut json = String::from("{\n  \"benchmark\": \"fig15\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n  \"workloads\": [\n"));
    for (i, (name, dt)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    {{\"name\": \"{name}\", \"seconds\": {dt:.3}}}{sep}\n"));
    }
    json.push_str("  ],\n  \"tables\": [\n");
    for (i, (id, dt)) in tables.iter().enumerate() {
        let sep = if i + 1 < tables.len() { "," } else { "" };
        json.push_str(&format!("    {{\"id\": \"{id}\", \"seconds\": {dt:.3}}}{sep}\n"));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"render_cache\": {{\"scene_builds\": {}, \"frame_hits\": {}, \"frame_misses\": {}}},\n",
        cache.scene_builds, cache.frame_hits, cache.frame_misses
    ));
    json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    json.push_str(&format!("  \"resilience_seconds\": {resilience_s:.3},\n"));
    json.push_str(&format!("  \"serve_seconds\": {serve_s:.3},\n"));
    json.push_str(&format!("  \"cluster_seconds\": {cluster_s:.3},\n"));
    json.push_str(&format!("  \"temporal_seconds\": {temporal_s:.3},\n"));
    json.push_str(&format!("  \"edge_seconds\": {edge_s:.3},\n"));
    json.push_str(&format!(
        "  \"serve_cache\": {{\"stream_hits\": {}, \"stream_misses\": {}}},\n",
        serve_cache.stream_hits, serve_cache.stream_misses
    ));
    json.push_str(&format!(
        "  \"mem_batches\": {{\"batches\": {}, \"accesses\": {}, \"folded\": {}, \
         \"mean_run_len\": {:.3}}},\n",
        bs.batches,
        bs.ops,
        bs.folded,
        bs.mean_run_len()
    ));
    json.push_str(&format!(
        "  \"raster_tiles\": {{\"accepted\": {}, \"rejected\": {}, \"partial\": {}}},\n",
        ts.accepted, ts.rejected, ts.partial
    ));
    json.push_str(&format!(
        "  \"trace_untraced_seconds\": {untraced_s:.6},\n  \"trace_traced_seconds\": {traced_s:.6},\n  \"trace_overhead_seconds\": {trace_overhead_s:.6},\n"
    ));
    json.push_str(&format!(
        "  \"metrics_unmetered_seconds\": {unmetered_s:.6},\n  \"metrics_metered_seconds\": {metered_s:.6},\n  \"metrics_overhead_seconds\": {metrics_overhead_s:.6},\n"
    ));
    match rss {
        Some(kb) => json.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
        None => json.push_str("  \"peak_rss_kb\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");
    println!("  wrote BENCH_substrate.json");
}

fn print_table1() {
    println!("== table1 — PC gaming vs stereo VR display requirements ==");
    for req in [&GAMING_PC, &STEREO_VR] {
        println!(
            "{:<10} display: {:<14} FoV: {:<28} {:>7.2} Mpixels  {:>5.0}-{:.0} ms  ({:.0} Mpix/s)",
            req.platform,
            req.display,
            req.field_of_view,
            req.mpixels,
            req.frame_latency_ms.0,
            req.frame_latency_ms.1,
            req.required_mpixels_per_second()
        );
    }
}

fn print_table2() {
    let c = oovr_gpu::GpuConfig::default();
    println!("== table2 — baseline configuration ==");
    println!("GPU frequency              1GHz");
    println!("Number of GPMs             {}", c.n_gpms);
    println!(
        "Number of SMs              {}, {} per GPM",
        c.n_gpms as u32 * c.sms_per_gpm,
        c.sms_per_gpm
    );
    println!("SM configuration           {} shader cores per SM", c.cores_per_sm);
    println!(
        "                           {} KiB unified L1 per GPM ({} ways)",
        c.mem.l1_bytes / 1024,
        c.mem.l1_ways
    );
    println!(
        "Texture filtering          16x anisotropic ({} samples/quad)",
        c.model.texel_samples_per_quad
    );
    println!(
        "Number of ROPs             {}, {} per GPM (4 px/cycle each)",
        c.n_gpms as u32 * c.rops_per_gpm,
        c.rops_per_gpm
    );
    println!(
        "L2 cache                   {} MiB total, {}-way",
        c.mem.l2_bytes as f64 * c.n_gpms as f64 / 1048576.0,
        c.mem.l2_ways
    );
    println!("Inter-GPM interconnect     {} GB/s NVLink (unidirectional)", c.link_gbps);
    println!("Local DRAM bandwidth       {} GB/s", c.dram_gbps);
}

fn print_table3(scale: f64) {
    println!("== table3 — benchmarks (generated synthetic equivalents) ==");
    println!(
        "{:<10} {:>11} {:>7} {:>10} {:>10} {:>12} {:>9}",
        "bench", "resolution", "#draw", "tris/eye", "textures", "tex bytes", "skew"
    );
    for spec in experiments::paper_workloads(scale) {
        let scene = spec.build();
        let st = SceneStats::of(&scene);
        println!(
            "{:<10} {:>11} {:>7} {:>10} {:>10} {:>12} {:>9.1}",
            spec.name,
            scene.resolution().to_string(),
            st.draws,
            st.triangles_per_eye,
            scene.textures().len(),
            st.texture_bytes,
            st.size_skew
        );
    }
}

fn print_overhead() {
    let o = EngineOverhead::for_gpms(4);
    println!("== overhead — distribution engine hardware cost (§5.4) ==");
    println!("counters      {:>5} bits (2 × 64-bit per GPM)", o.counter_bits);
    println!("batch queue   {:>5} bits (4 × 16-bit batch ids)", o.batch_queue_bits);
    println!("registers     {:>5} bits (12 × 32-bit)", o.register_bits);
    println!("total         {:>5} bits (paper: 960)", o.total_bits());
    println!(
        "area          {:.2} mm² at 24nm = {:.2}% of a GTX 1080 (paper: 0.18%)",
        oovr::overhead::AREA_MM2,
        o.area_fraction() * 100.0
    );
    println!(
        "power         {:.1} W = {:.2}% of TDP (paper: 0.16%)",
        oovr::overhead::POWER_W,
        o.power_fraction() * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `figures -- serve`/`trace serve` on an unknown workload must name
    /// every valid choice, not just reject the input.
    #[test]
    fn unknown_workload_error_lists_every_valid_name() {
        let err = trace_workload("no-such-bench", 1.0).unwrap_err();
        assert!(err.contains("no-such-bench"), "error must echo the bad input: {err}");
        assert!(err.contains("demo"), "error must mention the demo workload: {err}");
        for spec in oovr_scene::benchmarks::all() {
            assert!(err.contains(&spec.name), "error must list {}: {err}", spec.name);
        }
    }

    /// An unknown serve scheme must name every valid choice, matching the
    /// unknown-workload error above — `ServeScheme::parse` alone returns a
    /// silent `None`.
    #[test]
    fn unknown_serve_scheme_error_lists_every_valid_name() {
        let err = serve_scheme("no-such-scheme").unwrap_err();
        assert!(err.contains("no-such-scheme"), "error must echo the bad input: {err}");
        for s in ServeScheme::ALL {
            assert!(err.contains(s.cli_name()), "error must list {}: {err}", s.cli_name());
        }
        assert_eq!(serve_scheme("oovr-temporal").unwrap(), ServeScheme::OoVrTemporal);
        assert_eq!(serve_scheme("baseline").unwrap(), ServeScheme::Baseline);
    }

    /// `edge` must be a dispatchable id, and `trace edge <bad>` must
    /// name every valid workload, matching the other trace errors.
    #[test]
    fn edge_id_is_known_and_bad_edge_workloads_list_every_name() {
        assert!(known_id("edge"), "edge must be a known experiment id");
        let err = run_edge_trace("no-such-bench", 1.0).unwrap_err();
        assert!(err.contains("no-such-bench"), "error must echo the bad input: {err}");
        for spec in oovr_scene::benchmarks::all() {
            assert!(err.contains(&spec.name), "error must list {}: {err}", spec.name);
        }
    }

    #[test]
    fn workload_names_resolve_case_insensitively() {
        assert_eq!(trace_workload("hl2-640", 1.0).unwrap().name, "HL2-640");
        assert_eq!(trace_workload("demo", 0.3).unwrap().name, "demo");
    }
}
