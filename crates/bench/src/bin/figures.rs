//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p oovr-bench --release --bin figures -- all
//! cargo run -p oovr-bench --release --bin figures -- fig15 fig16
//! cargo run -p oovr-bench --release --bin figures -- --scale 0.5 fig4
//! cargo run -p oovr-bench --release --bin figures -- --csv out/ all
//! ```
//!
//! `--scale` shrinks the workloads (default 1.0 = the paper's resolutions
//! and draw counts). `--csv DIR` additionally writes one CSV per figure.

use std::io::Write as _;

use oovr::experiments::{
    self, ablation_batch_cap, ablation_calibration, ablation_components, ablation_tsl, energy,
    ext_sort_middle, fig10, fig15, fig16, fig17, fig18, fig4, fig7, fig8, fig9, smp_validation,
    steady_state, FigureTable,
};
use oovr::overhead::EngineOverhead;
use oovr_scene::stats::SceneStats;
use oovr_scene::vr::{GAMING_PC, STEREO_VR};

const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4",
    "smp",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "overhead",
    "energy",
    "steady",
    "ext_sort_middle",
];

/// Ablations are opt-in (`figures -- ablations` or by id): they re-render
/// every workload several times per knob.
const ABLATION_IDS: &[&str] =
    &["ablation_tsl", "ablation_batch_cap", "ablation_calibration", "ablation_components"];

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = 1.0f64;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a number in (0,1]");
            }
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv requires a directory"));
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ABLATION_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: figures [--scale S] [--csv DIR] <id>... | all | ablations | perf");
        eprintln!("ids: {} {} perf", ALL_IDS.join(" "), ABLATION_IDS.join(" "));
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let specs = experiments::paper_workloads(scale);
    println!("# OO-VR reproduction — {} workloads at scale {scale}\n", specs.len());

    for id in ids {
        let t0 = std::time::Instant::now();
        match id.as_str() {
            "table1" => print_table1(),
            "table2" => print_table2(),
            "table3" => print_table3(scale),
            "overhead" => print_overhead(),
            "perf" => run_perf(scale),
            _ => {
                let table: FigureTable = match id.as_str() {
                    "fig4" => fig4(&specs),
                    "smp" => smp_validation(&specs),
                    "fig7" => fig7(&specs),
                    "fig8" => fig8(&specs),
                    "fig9" => fig9(&specs),
                    "fig10" => fig10(&specs),
                    "fig15" => fig15(&specs),
                    "fig16" => fig16(&specs),
                    "fig17" => fig17(&specs),
                    "fig18" => fig18(&specs),
                    "energy" => energy(&specs),
                    "steady" => steady_state(&specs),
                    "ext_sort_middle" => ext_sort_middle(&specs),
                    "ablation_tsl" => ablation_tsl(&specs),
                    "ablation_batch_cap" => ablation_batch_cap(&specs),
                    "ablation_calibration" => ablation_calibration(&specs),
                    "ablation_components" => ablation_components(&specs),
                    other => {
                        eprintln!("unknown figure id {other:?}");
                        continue;
                    }
                };
                println!("{table}");
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{}.csv", table.id);
                    let mut f = std::fs::File::create(&path).expect("create csv");
                    f.write_all(table.to_csv().as_bytes()).expect("write csv");
                    println!("  wrote {path}");
                }
            }
        }
        println!("  [{} in {:.1?}]\n", id, t0.elapsed());
    }
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), or `None`
/// where `/proc` is unavailable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `figures -- perf`: the simulator-performance harness. Times the fig15
/// scheme comparison per workload and end-to-end, and writes
/// `BENCH_substrate.json` (wall-clock seconds per workload, total, peak RSS)
/// so perf regressions in the substrate show up as numbers, not vibes.
fn run_perf(scale: f64) {
    let specs = experiments::paper_workloads(scale);
    println!("== perf — fig15 wall-clock per workload (scale {scale}) ==");
    let mut rows = Vec::new();
    for spec in &specs {
        let t0 = std::time::Instant::now();
        let table = fig15(std::slice::from_ref(spec));
        let dt = t0.elapsed().as_secs_f64();
        println!("{:<10} {:>8.2}s  ({} rows)", spec.name, dt, table.rows.len());
        rows.push((spec.name.clone(), dt));
    }
    let t0 = std::time::Instant::now();
    let _ = fig15(&specs);
    let total = t0.elapsed().as_secs_f64();
    let rss = peak_rss_kb();
    println!("{:<10} {total:>8.2}s  (all workloads, one grid)", "full");
    if let Some(kb) = rss {
        println!("peak RSS   {:>8.1} MiB", kb as f64 / 1024.0);
    }

    let mut json = String::from("{\n  \"benchmark\": \"fig15\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n  \"workloads\": [\n"));
    for (i, (name, dt)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    {{\"name\": \"{name}\", \"seconds\": {dt:.3}}}{sep}\n"));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    match rss {
        Some(kb) => json.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
        None => json.push_str("  \"peak_rss_kb\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");
    println!("  wrote BENCH_substrate.json");
}

fn print_table1() {
    println!("== table1 — PC gaming vs stereo VR display requirements ==");
    for req in [&GAMING_PC, &STEREO_VR] {
        println!(
            "{:<10} display: {:<14} FoV: {:<28} {:>7.2} Mpixels  {:>5.0}-{:.0} ms  ({:.0} Mpix/s)",
            req.platform,
            req.display,
            req.field_of_view,
            req.mpixels,
            req.frame_latency_ms.0,
            req.frame_latency_ms.1,
            req.required_mpixels_per_second()
        );
    }
}

fn print_table2() {
    let c = oovr_gpu::GpuConfig::default();
    println!("== table2 — baseline configuration ==");
    println!("GPU frequency              1GHz");
    println!("Number of GPMs             {}", c.n_gpms);
    println!(
        "Number of SMs              {}, {} per GPM",
        c.n_gpms as u32 * c.sms_per_gpm,
        c.sms_per_gpm
    );
    println!("SM configuration           {} shader cores per SM", c.cores_per_sm);
    println!(
        "                           {} KiB unified L1 per GPM ({} ways)",
        c.mem.l1_bytes / 1024,
        c.mem.l1_ways
    );
    println!(
        "Texture filtering          16x anisotropic ({} samples/quad)",
        c.model.texel_samples_per_quad
    );
    println!(
        "Number of ROPs             {}, {} per GPM (4 px/cycle each)",
        c.n_gpms as u32 * c.rops_per_gpm,
        c.rops_per_gpm
    );
    println!(
        "L2 cache                   {} MiB total, {}-way",
        c.mem.l2_bytes as f64 * c.n_gpms as f64 / 1048576.0,
        c.mem.l2_ways
    );
    println!("Inter-GPM interconnect     {} GB/s NVLink (unidirectional)", c.link_gbps);
    println!("Local DRAM bandwidth       {} GB/s", c.dram_gbps);
}

fn print_table3(scale: f64) {
    println!("== table3 — benchmarks (generated synthetic equivalents) ==");
    println!(
        "{:<10} {:>11} {:>7} {:>10} {:>10} {:>12} {:>9}",
        "bench", "resolution", "#draw", "tris/eye", "textures", "tex bytes", "skew"
    );
    for spec in experiments::paper_workloads(scale) {
        let scene = spec.build();
        let st = SceneStats::of(&scene);
        println!(
            "{:<10} {:>11} {:>7} {:>10} {:>10} {:>12} {:>9.1}",
            spec.name,
            scene.resolution().to_string(),
            st.draws,
            st.triangles_per_eye,
            scene.textures().len(),
            st.texture_bytes,
            st.size_skew
        );
    }
}

fn print_overhead() {
    let o = EngineOverhead::for_gpms(4);
    println!("== overhead — distribution engine hardware cost (§5.4) ==");
    println!("counters      {:>5} bits (2 × 64-bit per GPM)", o.counter_bits);
    println!("batch queue   {:>5} bits (4 × 16-bit batch ids)", o.batch_queue_bits);
    println!("registers     {:>5} bits (12 × 32-bit)", o.register_bits);
    println!("total         {:>5} bits (paper: 960)", o.total_bits());
    println!(
        "area          {:.2} mm² at 24nm = {:.2}% of a GTX 1080 (paper: 0.18%)",
        oovr::overhead::AREA_MM2,
        o.area_fraction() * 100.0
    );
    println!(
        "power         {:.1} W = {:.2}% of TDP (paper: 0.16%)",
        oovr::overhead::POWER_W,
        o.power_fraction() * 100.0
    );
}
