//! Fig. 4 bench: baseline frame simulation across inter-GPM bandwidths.
//! The printed table itself comes from `figures -- fig4`; this bench tracks
//! the simulator cost of the sweep's two extreme points.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let scene = common::scene();
    let mut g = c.benchmark_group("fig04_link_bw");
    for gbps in [32.0, 1000.0] {
        let cfg = GpuConfig::default().with_link_gbps(gbps);
        g.bench_function(format!("baseline_{gbps}GBps"), |b| {
            b.iter(|| SchemeKind::Baseline.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
