//! Fig. 17 bench: OO-VR under the bandwidth sweep (full series:
//! `figures -- fig17`). OO-VR's cost should be nearly flat across
//! bandwidths — that insensitivity is the paper's headline claim.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let scene = common::scene();
    let mut g = c.benchmark_group("fig17_bw_sensitivity");
    for gbps in [32.0, 64.0, 256.0] {
        let cfg = GpuConfig::default().with_link_gbps(gbps);
        g.bench_function(format!("oovr_{gbps}GBps"), |b| {
            b.iter(|| SchemeKind::OoVr.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
