//! Fig. 7 bench: AFR vs baseline frame simulation (overall perf and
//! single-frame latency come from the same runs in `figures -- fig7`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut g = c.benchmark_group("fig07_afr");
    for scene in common::scenes() {
        g.bench_function(format!("afr_{}", scene.name()), |b| {
            b.iter(|| SchemeKind::FrameLevel.render(&scene, &cfg).frame_cycles)
        });
        g.bench_function(format!("baseline_{}", scene.name()), |b| {
            b.iter(|| SchemeKind::Baseline.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
