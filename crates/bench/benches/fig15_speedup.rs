//! Fig. 15 bench: the five design scenarios on one workload (the full table
//! is `figures -- fig15`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let scene = common::scene();
    let mut g = c.benchmark_group("fig15_speedup");
    for kind in [
        SchemeKind::Baseline,
        SchemeKind::ObjectLevel,
        SchemeKind::FrameLevel,
        SchemeKind::OoApp,
        SchemeKind::OoVr,
    ] {
        g.bench_function(kind.label().replace(' ', "_"), |b| {
            b.iter(|| kind.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
