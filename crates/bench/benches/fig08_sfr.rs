//! Figs. 8–10 bench: the three SFR schemes (performance, traffic and load
//! balance all come from the same frame runs in `figures -- fig8/9/10`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let scene = common::scene();
    let mut g = c.benchmark_group("fig08_sfr");
    for kind in [SchemeKind::TileV, SchemeKind::TileH, SchemeKind::ObjectLevel] {
        g.bench_function(kind.label().replace(' ', "_"), |b| {
            b.iter(|| kind.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
