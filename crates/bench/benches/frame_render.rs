//! Full-frame render microbench per scheme (Baseline / ObjectLevel / OoVr /
//! OoVr+RES) on a small workload — guards the executor hot path the render
//! cache sits on top of: any regression here shows up uncached, before
//! memoization can mask it.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr::schemes::OoVr;
use oovr_frameworks::RenderScheme as _;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let scene = common::scene();
    let mut g = c.benchmark_group("frame_render");
    for kind in [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr] {
        g.bench_function(kind.label().replace(' ', "_"), |b| {
            b.iter(|| kind.render(&scene, &cfg).frame_cycles)
        });
    }
    // The resilient variant exercises the countermeasure runtime plus the
    // deadline shedding path; the deadline matches the resilience grid's
    // 1.25× fault-free budget.
    let deadline = (OoVr::new().render_frame(&scene, &cfg).frame_cycles as f64 * 1.25) as u64;
    g.bench_function("OOVR+RES", |b| {
        b.iter(|| OoVr::resilient_with_deadline(deadline).render_frame(&scene, &cfg).frame_cycles)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
