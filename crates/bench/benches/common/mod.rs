//! Shared helpers for the figure benches: reduced-scale workloads so
//! `cargo bench` completes quickly while exercising exactly the code paths
//! the full-scale `figures` binary uses.

#![allow(dead_code)] // each bench binary uses a subset of these helpers

use criterion::Criterion;
use oovr_scene::{benchmarks, BenchmarkSpec, Scene};

/// Benchmark scale used by the criterion benches.
pub const BENCH_SCALE: f64 = 0.2;

/// A small representative workload pair: one corridor shooter, one
/// draw-heavy scene.
pub fn scenes() -> Vec<Scene> {
    vec![
        benchmarks::hl2_640().scaled(BENCH_SCALE).build(),
        benchmarks::we().scaled(BENCH_SCALE).build(),
    ]
}

/// One mid-size scene.
pub fn scene() -> Scene {
    benchmarks::hl2_640().scaled(BENCH_SCALE).build()
}

/// The scaled nine-point suite (for benches that sweep).
pub fn suite() -> Vec<BenchmarkSpec> {
    benchmarks::all().into_iter().map(|s| s.scaled(0.12)).collect()
}

/// Criterion tuned for heavyweight end-to-end simulations.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}
