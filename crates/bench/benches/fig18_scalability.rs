//! Fig. 18 bench: OO-VR across GPM counts (full series: `figures -- fig18`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let scene = common::scene();
    let mut g = c.benchmark_group("fig18_scalability");
    for n in [1usize, 4, 8] {
        let cfg = GpuConfig::default().with_n_gpms(n);
        g.bench_function(format!("oovr_{n}gpm"), |b| {
            b.iter(|| SchemeKind::OoVr.render(&scene, &cfg).frame_cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
