//! Fig. 16 bench: inter-GPM traffic accounting of Baseline / Object-level /
//! OO-VR (table: `figures -- fig16`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let scene = common::scene();
    let mut g = c.benchmark_group("fig16_traffic");
    for kind in [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr] {
        g.bench_function(kind.label().replace(' ', "_"), |b| {
            b.iter(|| kind.render(&scene, &cfg).inter_gpm_bytes())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
