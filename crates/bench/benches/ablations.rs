//! Ablation benches for the design choices DESIGN.md calls out: the TSL
//! threshold, the batch triangle cap, the calibration length, and the
//! OO-VR component toggles. Each variant simulates a full frame; compare
//! the reported `frame_cycles` (printed via `figures`-style tables in the
//! integration tests) and the wall-clock cost here.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oovr::distribution::DistributionConfig;
use oovr::middleware::MiddlewareConfig;
use oovr::schemes::OoVr;
use oovr_frameworks::RenderScheme;
use oovr_gpu::GpuConfig;

fn bench(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let scene = common::scene();

    let mut g = c.benchmark_group("ablation_tsl");
    for threshold in [0.1, 0.5, 0.9] {
        let scheme = OoVr {
            middleware: MiddlewareConfig { tsl_threshold: threshold, ..Default::default() },
            ..OoVr::new()
        };
        g.bench_function(format!("tsl_{threshold}"), |b| {
            b.iter(|| black_box(scheme.render_frame(&scene, &cfg).frame_cycles))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_batch_cap");
    for cap in [512u64, 4096, 32768] {
        let scheme = OoVr {
            middleware: MiddlewareConfig { triangle_cap: cap, ..Default::default() },
            ..OoVr::new()
        };
        g.bench_function(format!("cap_{cap}"), |b| {
            b.iter(|| black_box(scheme.render_frame(&scene, &cfg).frame_cycles))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_calibration");
    for n in [2usize, 8, 24] {
        let scheme = OoVr {
            distribution: DistributionConfig { calibration: n, ..Default::default() },
            ..OoVr::new()
        };
        g.bench_function(format!("calibration_{n}"), |b| {
            b.iter(|| black_box(scheme.render_frame(&scene, &cfg).frame_cycles))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_components");
    let variants: [(&str, OoVr); 4] = [
        ("full", OoVr::new()),
        (
            "no_predictor",
            OoVr {
                distribution: DistributionConfig { predictor: false, ..Default::default() },
                ..OoVr::new()
            },
        ),
        (
            "no_prealloc",
            OoVr {
                distribution: DistributionConfig { prealloc: false, ..Default::default() },
                ..OoVr::new()
            },
        ),
        ("no_dhc", OoVr { dhc: false, ..OoVr::new() }),
    ];
    for (name, scheme) in variants {
        g.bench_function(name, |b| {
            b.iter(|| black_box(scheme.render_frame(&scene, &cfg).frame_cycles))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
