//! Microbenchmarks of the simulator substrate: cache probes, rasterization,
//! TSL batching, scene generation, and the full executor fast path.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oovr::middleware::{build_batches, MiddlewareConfig};
use oovr_gpu::{fragment_count, ColorMode, Composition, Executor, FbOrg, GpuConfig, RenderUnit};
use oovr_mem::{
    Addr, GpmId, MemConfig, MemorySystem, PageTable, Placement, SetAssocCache, Traffic,
    TrafficClass,
};
use oovr_scene::{benchmarks, Eye};

fn bench(c: &mut Criterion) {
    // Cache probe throughput: streaming and thrashing patterns.
    c.bench_function("cache_probe_stream", |b| {
        let mut cache = SetAssocCache::new(1024 * 1024, 8, 64);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (512 * 1024);
            black_box(cache.access(Addr(i), false).is_hit())
        })
    });

    // MRU-way fast path: repeated hits on one line resolve from the probe.
    c.bench_function("cache_probe_mru_hit", |b| {
        let mut cache = SetAssocCache::new(1024 * 1024, 8, 64);
        cache.access(Addr(0), false);
        b.iter(|| black_box(cache.access(Addr(0), false).is_hit()))
    });

    // Page translation: line-granular streaming (lookaside-friendly — ~64
    // consecutive lines per page) vs page-striding (a fresh page each call,
    // exercising the dense chunked table).
    c.bench_function("page_translate_stream", |b| {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (32 * 1024 * 1024);
            black_box(pt.resolve(Addr(i), GpmId(0)))
        })
    });

    c.bench_function("page_translate_stride", |b| {
        let mut pt = PageTable::new(4, Placement::Interleaved);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4096) % (32 * 1024 * 1024);
            black_box(pt.resolve(Addr(i), GpmId(1)))
        })
    });

    // Quantum epoch turnaround: record a little traffic, then drain it into
    // a reusable scratch ledger (the executor does this once per quantum).
    c.bench_function("drain_pending_epoch", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut scratch = Traffic::new(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            mem.read(GpmId(0), Addr(i % (1 << 20)), TrafficClass::Texture, true);
            mem.drain_pending_into(&mut scratch);
            black_box(scratch.local_bytes())
        })
    });

    c.bench_function("memory_system_read", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (8 * 1024 * 1024);
            black_box(mem.read(GpmId((i / 64 % 4) as u8), Addr(i), TrafficClass::Texture, true))
        })
    });

    // Rasterizer throughput on a mid-size triangle.
    let scene = common::scene();
    let tri = scene.objects()[0]
        .triangles(scene.resolution(), Eye::Left)
        .next()
        .expect("object has triangles");
    c.bench_function("rasterize_triangle", |b| {
        b.iter(|| black_box(fragment_count(&tri, None, 128, 96)))
    });

    // TSL batching over a full draw list.
    let big = benchmarks::nfs().scaled(0.2).build();
    c.bench_function("tsl_batching_nfs", |b| {
        b.iter(|| black_box(build_batches(&big, MiddlewareConfig::default()).len()))
    });

    // Scene generation.
    c.bench_function("scene_generation", |b| {
        let spec = benchmarks::hl2_640().scaled(0.2);
        b.iter(|| black_box(spec.build().draw_count()))
    });

    // One object through the full pipeline.
    c.bench_function("executor_single_object", |b| {
        b.iter(|| {
            let mut ex = Executor::new(
                GpuConfig::default(),
                &scene,
                Placement::FirstTouch,
                FbOrg::InterleavedPages,
                ColorMode::Direct,
            );
            ex.exec_unit(GpmId(0), &RenderUnit::smp(scene.objects()[0].id()));
            black_box(ex.finish("bench", Composition::None).frame_cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
