//! Microbenchmarks of the simulator substrate: cache probes, rasterization,
//! TSL batching, scene generation, and the full executor fast path.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oovr::middleware::{build_batches, MiddlewareConfig};
use oovr_gpu::{fragment_count, ColorMode, Composition, Executor, FbOrg, GpuConfig, RenderUnit};
use oovr_mem::{
    AccessLevel, Addr, GpmId, MemConfig, MemorySystem, PageTable, Placement, SetAssocCache,
    Traffic, TrafficClass,
};
use oovr_scene::{benchmarks, Eye, ScreenTriangle, TextureId, Vec2};

fn bench(c: &mut Criterion) {
    // Cache probe throughput: streaming and thrashing patterns.
    c.bench_function("cache_probe_stream", |b| {
        let mut cache = SetAssocCache::new(1024 * 1024, 8, 64);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (512 * 1024);
            black_box(cache.access(Addr(i), false).is_hit())
        })
    });

    // MRU-way fast path: repeated hits on one line resolve from the probe.
    c.bench_function("cache_probe_mru_hit", |b| {
        let mut cache = SetAssocCache::new(1024 * 1024, 8, 64);
        cache.access(Addr(0), false);
        b.iter(|| black_box(cache.access(Addr(0), false).is_hit()))
    });

    // Page translation: line-granular streaming (lookaside-friendly — ~64
    // consecutive lines per page) vs page-striding (a fresh page each call,
    // exercising the dense chunked table).
    c.bench_function("page_translate_stream", |b| {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (32 * 1024 * 1024);
            black_box(pt.resolve(Addr(i), GpmId(0)))
        })
    });

    c.bench_function("page_translate_stride", |b| {
        let mut pt = PageTable::new(4, Placement::Interleaved);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4096) % (32 * 1024 * 1024);
            black_box(pt.resolve(Addr(i), GpmId(1)))
        })
    });

    // Quantum epoch turnaround: record a little traffic, then drain it into
    // a reusable scratch ledger (the executor does this once per quantum).
    c.bench_function("drain_pending_epoch", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut scratch = Traffic::new(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            mem.read(GpmId(0), Addr(i % (1 << 20)), TrafficClass::Texture, true);
            mem.drain_pending_into(&mut scratch);
            black_box(scratch.local_bytes())
        })
    });

    c.bench_function("memory_system_read", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (8 * 1024 * 1024);
            black_box(mem.read(GpmId((i / 64 % 4) as u8), Addr(i), TrafficClass::Texture, true))
        })
    });

    // Batched reads: a run-heavy stream (texel walks revisit the same line)
    // folds into counted MRU hits, vs a line-striding stream that folds
    // nothing — the gap is the amortization read_batch buys.
    let run_heavy: Vec<Addr> =
        (0..256u64).flat_map(|i| (0..8u64).map(move |r| Addr((i % 32) * 64 + r * 7))).collect();
    let striding: Vec<Addr> = (0..2048u64).map(|i| Addr((i * 64) % (1 << 20))).collect();
    c.bench_function("mem_read_batch_runs", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut levels: Vec<AccessLevel> = Vec::with_capacity(run_heavy.len());
        b.iter(|| {
            levels.clear();
            mem.read_batch(GpmId(0), &run_heavy, TrafficClass::Texture, true, &mut levels);
            black_box(levels.len())
        })
    });

    c.bench_function("mem_read_batch_striding", |b| {
        let mut mem = MemorySystem::new(4, MemConfig::default(), Placement::FirstTouch);
        let mut levels: Vec<AccessLevel> = Vec::with_capacity(striding.len());
        b.iter(|| {
            levels.clear();
            mem.read_batch(GpmId(0), &striding, TrafficClass::Texture, true, &mut levels);
            black_box(levels.len())
        })
    });

    // Tiled raster: a 128×128 right triangle is mostly trivially
    // accepted/rejected tiles, vs a comb of thin slivers that is all
    // edge-crossing (per-pixel) tiles.
    let full_cover = ScreenTriangle {
        v: [Vec2::new(0.0, 0.0), Vec2::new(128.0, 0.0), Vec2::new(0.0, 128.0)],
        uv: [Vec2::new(0.0, 0.0), Vec2::new(64.0, 0.0), Vec2::new(0.0, 64.0)],
        z: 0.5,
        texture: TextureId(0),
    };
    c.bench_function("raster_tile_full_cover", |b| {
        b.iter(|| black_box(fragment_count(&full_cover, None, 128, 128)))
    });

    let edge_crossing = ScreenTriangle {
        v: [Vec2::new(0.3, 0.7), Vec2::new(127.3, 120.9), Vec2::new(2.1, 9.4)],
        uv: full_cover.uv,
        z: 0.5,
        texture: TextureId(0),
    };
    c.bench_function("raster_tile_edge_crossing", |b| {
        b.iter(|| black_box(fragment_count(&edge_crossing, None, 128, 128)))
    });

    // Rasterizer throughput on a mid-size triangle.
    let scene = common::scene();
    let tri = scene.objects()[0]
        .triangles(scene.resolution(), Eye::Left)
        .next()
        .expect("object has triangles");
    c.bench_function("rasterize_triangle", |b| {
        b.iter(|| black_box(fragment_count(&tri, None, 128, 96)))
    });

    // TSL batching over a full draw list.
    let big = benchmarks::nfs().scaled(0.2).build();
    c.bench_function("tsl_batching_nfs", |b| {
        b.iter(|| black_box(build_batches(&big, MiddlewareConfig::default()).len()))
    });

    // Scene generation.
    c.bench_function("scene_generation", |b| {
        let spec = benchmarks::hl2_640().scaled(0.2);
        b.iter(|| black_box(spec.build().draw_count()))
    });

    // One object through the full pipeline.
    c.bench_function("executor_single_object", |b| {
        b.iter(|| {
            let mut ex = Executor::new(
                GpuConfig::default(),
                &scene,
                Placement::FirstTouch,
                FbOrg::InterleavedPages,
                ColorMode::Direct,
            );
            ex.exec_unit(GpmId(0), &RenderUnit::smp(scene.objects()[0].id()));
            black_box(ex.finish("bench", Composition::None).frame_cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
