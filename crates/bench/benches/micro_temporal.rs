//! Microbenchmarks of the temporal-reuse hot path: the per-frame reuse
//! decision (a probe walk over every object's projected-bound motion) and
//! the OU pose step that feeds it. Both run once per session per frame in
//! the serving layer, so their cost bounds how many concurrent sessions
//! the capacity probe can price.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oovr::schemes::OoVr;
use oovr::temporal::DEFAULT_REUSE_THRESHOLD;
use oovr_gpu::GpuConfig;
use oovr_scene::PoseTrajectory;

fn bench(c: &mut Criterion) {
    let scene = common::scene();
    let cfg = GpuConfig::default();
    let (_, profile) = OoVr::new().render_frames_profiled(&scene, &cfg, 2);
    let mut traj = PoseTrajectory::new(7);
    let from = traj.current();
    let to = traj.step();

    // The per-frame reuse decision at the default threshold: walks every
    // object's motion probe and rebuilds the per-GPM load vector.
    c.bench_function("temporal_reuse_decision", |b| {
        b.iter(|| black_box(profile.decide(&from, &to, DEFAULT_REUSE_THRESHOLD).saved))
    });

    // The exact path short-circuits before the probe walk; its cost is the
    // floor every non-temporal frame pays when a profile is attached.
    c.bench_function("temporal_reuse_decision_exact", |b| {
        b.iter(|| black_box(profile.decide(&from, &to, 0.0).rerendered))
    });

    // One OU pose step: the head-motion model advanced once per 90 Hz frame
    // for every live session.
    c.bench_function("pose_step", |b| {
        let mut walk = PoseTrajectory::new(42);
        b.iter(|| black_box(walk.step().yaw))
    });
}

criterion_group! {
    name = benches;
    config = common::criterion();
    targets = bench
}
criterion_main!(benches);
