//! Traffic accounting: who moved how many bytes, over what, and why.
//!
//! The paper's key metric besides performance is *inter-GPM memory traffic*
//! (Figs. 9 and 16), broken down by cause (§6.2 attributes OO-VR's residual
//! traffic to composition, command transmit and Z-test). Every byte the
//! simulator moves is tagged with a [`TrafficClass`].

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::placement::GpmId;

/// Why a transfer happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Vertex buffer reads during geometry processing.
    Vertex,
    /// Texture sampling during fragment processing.
    Texture,
    /// Depth (Z) buffer reads/writes.
    Depth,
    /// Color output writes from the ROPs.
    Color,
    /// Draw command transmission to GPMs.
    Command,
    /// Final-frame composition transfers.
    Composition,
    /// OO-VR PA-unit pre-allocation / replication copies.
    PreAlloc,
}

impl TrafficClass {
    /// All classes, for iteration/reporting.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::Vertex,
        TrafficClass::Texture,
        TrafficClass::Depth,
        TrafficClass::Color,
        TrafficClass::Command,
        TrafficClass::Composition,
        TrafficClass::PreAlloc,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Vertex => 0,
            TrafficClass::Texture => 1,
            TrafficClass::Depth => 2,
            TrafficClass::Color => 3,
            TrafficClass::Command => 4,
            TrafficClass::Composition => 5,
            TrafficClass::PreAlloc => 6,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Vertex => "vertex",
            TrafficClass::Texture => "texture",
            TrafficClass::Depth => "depth",
            TrafficClass::Color => "color",
            TrafficClass::Command => "command",
            TrafficClass::Composition => "composition",
            TrafficClass::PreAlloc => "prealloc",
        };
        f.write_str(s)
    }
}

/// Per directed-link byte counters for an `n`-GPM system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMatrix {
    n: usize,
    bytes: Vec<u64>,
}

impl LinkMatrix {
    /// Crate-internal accessor for element-wise arithmetic.
    pub(crate) fn bytes_mut(&mut self) -> &mut [u64] {
        &mut self.bytes
    }

    /// Zeroes all counters in place (no reallocation).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }
}

impl LinkMatrix {
    /// Creates an all-zero matrix.
    pub fn new(n_gpms: usize) -> Self {
        LinkMatrix { n: n_gpms, bytes: vec![0; n_gpms * n_gpms] }
    }

    /// Adds `bytes` to the `from → to` link.
    pub fn add(&mut self, from: GpmId, to: GpmId, bytes: u64) {
        debug_assert_ne!(from, to, "local transfers do not use links");
        self.bytes[from.index() * self.n + to.index()] += bytes;
    }

    /// Bytes moved `from → to`.
    pub fn get(&self, from: GpmId, to: GpmId) -> u64 {
        self.bytes[from.index() * self.n + to.index()]
    }

    /// Total bytes over all links.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of GPMs.
    pub fn n_gpms(&self) -> usize {
        self.n
    }
}

impl AddAssign<&LinkMatrix> for LinkMatrix {
    fn add_assign(&mut self, rhs: &LinkMatrix) {
        assert_eq!(self.n, rhs.n, "link matrices must match in size");
        for (a, b) in self.bytes.iter_mut().zip(&rhs.bytes) {
            *a += b;
        }
    }
}

/// A traffic ledger: local DRAM bytes per GPM, inter-GPM link bytes, and a
/// per-class split of local vs. remote bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    /// DRAM bytes served locally, per GPM.
    pub dram: Vec<u64>,
    /// Inter-GPM link bytes (directed).
    pub links: LinkMatrix,
    /// Local bytes per traffic class.
    local_by_class: [u64; 7],
    /// Remote (link) bytes per traffic class.
    remote_by_class: [u64; 7],
}

impl Traffic {
    /// Creates an empty ledger.
    pub fn new(n_gpms: usize) -> Self {
        Traffic {
            dram: vec![0; n_gpms],
            links: LinkMatrix::new(n_gpms),
            local_by_class: [0; 7],
            remote_by_class: [0; 7],
        }
    }

    /// Records a local DRAM access at `gpm`.
    pub fn add_local(&mut self, gpm: GpmId, class: TrafficClass, bytes: u64) {
        self.dram[gpm.index()] += bytes;
        self.local_by_class[class.index()] += bytes;
    }

    /// Records a remote access: DRAM read at `home`, link transfer
    /// `home → accessor`.
    pub fn add_remote(&mut self, home: GpmId, accessor: GpmId, class: TrafficClass, bytes: u64) {
        self.dram[home.index()] += bytes;
        self.links.add(home, accessor, bytes);
        self.remote_by_class[class.index()] += bytes;
    }

    /// Records a pure link transfer (e.g. composition pushes, PA copies)
    /// without a DRAM read charge.
    pub fn add_link_only(&mut self, from: GpmId, to: GpmId, class: TrafficClass, bytes: u64) {
        self.links.add(from, to, bytes);
        self.remote_by_class[class.index()] += bytes;
    }

    /// Total inter-GPM bytes (the paper's inter-GPM memory traffic metric).
    pub fn inter_gpm_bytes(&self) -> u64 {
        self.links.total()
    }

    /// Inter-GPM bytes excluding one-time PA warm-up copies. A single
    /// simulated frame starts from cold page placement, so it pays the PA
    /// units' data distribution that a steady-state frame sequence pays
    /// only once; this is the per-frame traffic comparable to the paper's
    /// Figs. 9/16.
    pub fn steady_inter_gpm_bytes(&self) -> u64 {
        self.links.total().saturating_sub(self.remote_of(TrafficClass::PreAlloc))
    }

    /// Total local DRAM bytes.
    pub fn local_bytes(&self) -> u64 {
        self.dram.iter().sum()
    }

    /// Remote bytes of one class.
    pub fn remote_of(&self, class: TrafficClass) -> u64 {
        self.remote_by_class[class.index()]
    }

    /// Local bytes of one class.
    pub fn local_of(&self, class: TrafficClass) -> u64 {
        self.local_by_class[class.index()]
    }

    /// Folds another ledger into this one.
    ///
    /// # Panics
    ///
    /// Panics if GPM counts differ.
    pub fn merge(&mut self, other: &Traffic) {
        assert_eq!(self.dram.len(), other.dram.len(), "GPM counts must match");
        for (a, b) in self.dram.iter_mut().zip(&other.dram) {
            *a += b;
        }
        self.links += &other.links;
        for i in 0..7 {
            self.local_by_class[i] += other.local_by_class[i];
            self.remote_by_class[i] += other.remote_by_class[i];
        }
    }

    /// True when no bytes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.local_bytes() == 0 && self.inter_gpm_bytes() == 0
    }

    /// Number of GPMs this ledger covers.
    pub fn n_gpms(&self) -> usize {
        self.dram.len()
    }

    /// Zeroes all counters in place, keeping the allocations (the executor
    /// reuses one scratch ledger across quanta instead of allocating).
    pub fn clear(&mut self) {
        self.dram.fill(0);
        self.links.clear();
        self.local_by_class = [0; 7];
        self.remote_by_class = [0; 7];
    }

    /// Returns `self − earlier`, element-wise (used to isolate one frame's
    /// traffic from a cumulative ledger).
    ///
    /// # Panics
    ///
    /// Panics if GPM counts differ or `earlier` exceeds `self` anywhere
    /// (ledgers only grow, so an earlier snapshot is always ≤ the total).
    pub fn since(&self, earlier: &Traffic) -> Traffic {
        assert_eq!(self.dram.len(), earlier.dram.len(), "GPM counts must match");
        let mut out = Traffic::new(self.dram.len());
        for (o, (a, b)) in out.dram.iter_mut().zip(self.dram.iter().zip(&earlier.dram)) {
            *o = a.checked_sub(*b).expect("ledger only grows");
        }
        let n2 = out.links.bytes.len();
        for i in 0..n2 {
            let (a, b) = (self.links.bytes[i], earlier.links.bytes[i]);
            out.links.bytes_mut()[i] = a.checked_sub(b).expect("ledger only grows");
        }
        for i in 0..7 {
            out.local_by_class[i] = self.local_by_class[i] - earlier.local_by_class[i];
            out.remote_by_class[i] = self.remote_by_class[i] - earlier.remote_by_class[i];
        }
        out
    }
}

impl Add<&Traffic> for Traffic {
    type Output = Traffic;

    fn add(mut self, rhs: &Traffic) -> Traffic {
        self.merge(rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accounting() {
        let mut t = Traffic::new(4);
        t.add_local(GpmId(0), TrafficClass::Texture, 100);
        t.add_remote(GpmId(1), GpmId(0), TrafficClass::Texture, 64);
        t.add_link_only(GpmId(2), GpmId(0), TrafficClass::Composition, 32);
        assert_eq!(t.local_bytes(), 164); // 100 local + 64 dram read at home
        assert_eq!(t.inter_gpm_bytes(), 96);
        assert_eq!(t.remote_of(TrafficClass::Texture), 64);
        assert_eq!(t.remote_of(TrafficClass::Composition), 32);
        assert_eq!(t.local_of(TrafficClass::Texture), 100);
        assert_eq!(t.links.get(GpmId(1), GpmId(0)), 64);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Traffic::new(2);
        a.add_local(GpmId(0), TrafficClass::Vertex, 10);
        let mut b = Traffic::new(2);
        b.add_remote(GpmId(1), GpmId(0), TrafficClass::Vertex, 20);
        a.merge(&b);
        assert_eq!(a.dram, vec![10, 20]);
        assert_eq!(a.inter_gpm_bytes(), 20);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "GPM counts")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = Traffic::new(2);
        a.merge(&Traffic::new(4));
    }

    #[test]
    fn link_matrix_totals() {
        let mut m = LinkMatrix::new(3);
        m.add(GpmId(0), GpmId(1), 5);
        m.add(GpmId(2), GpmId(1), 7);
        assert_eq!(m.total(), 12);
        assert_eq!(m.get(GpmId(0), GpmId(1)), 5);
        assert_eq!(m.get(GpmId(1), GpmId(0)), 0);
    }

    #[test]
    fn since_isolates_a_frame() {
        let mut t = Traffic::new(2);
        t.add_local(GpmId(0), TrafficClass::Vertex, 10);
        let snap = t.clone();
        t.add_remote(GpmId(1), GpmId(0), TrafficClass::Texture, 64);
        let delta = t.since(&snap);
        assert_eq!(delta.local_bytes(), 64, "only the home-side DRAM read of frame 2");
        assert_eq!(delta.inter_gpm_bytes(), 64);
        assert_eq!(delta.remote_of(TrafficClass::Texture), 64);
        assert_eq!(delta.local_of(TrafficClass::Vertex), 0);
    }

    #[test]
    #[should_panic(expected = "GPM counts")]
    fn since_rejects_mismatched_sizes() {
        let t = Traffic::new(2);
        let _ = t.since(&Traffic::new(4));
    }

    #[test]
    fn class_display_names() {
        assert_eq!(TrafficClass::Texture.to_string(), "texture");
        assert_eq!(TrafficClass::ALL.len(), 7);
    }
}
