//! # oovr-mem
//!
//! The NUMA memory substrate of the OO-VR reproduction: a functional +
//! timing model of the multi-GPM memory system described in §2.3 and Table 2
//! of the paper (Xie et al., ISCA 2019).
//!
//! Components:
//!
//! * [`address`] — byte addresses, 64 B cache lines, 4 KiB pages, and a bump
//!   allocator for scene resources (vertex buffers, textures, framebuffer).
//! * [`placement`] — the NUMA page table with First-Touch (the baseline's
//!   policy, after Arunkumar et al. \[5\]), interleaved, fixed and
//!   replicated placement, plus explicit migration used by OO-VR's
//!   pre-allocation (PA) units.
//! * [`cache`] — set-associative L1/L2 models with LRU and write-back
//!   support; remote lines are L2-cacheable (the baseline's remote cache).
//! * [`timing`] — bandwidth servers: local DRAM at 1 TB/s and pairwise
//!   NVLinks at 64 GB/s (Table 2), with FIFO queueing.
//! * [`system`] — [`MemorySystem`]: the per-GPM cache hierarchies glued to
//!   the page table, producing a [`stats::Traffic`] ledger that the
//!   simulator's executor converts into time.
//!
//! The split between *functional* probing and *timed* transfer is
//! deliberate: cache hit/miss behaviour is computed per cache line, while
//! bandwidth contention is applied per work-quantum by the discrete-event
//! executor in `oovr-gpu`, which keeps multi-million-fragment frames fast to
//! simulate without losing the local-vs-remote bandwidth asymmetry that
//! drives every result in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod cache;
pub mod error;
pub mod placement;
pub mod stats;
pub mod substrate;
pub mod system;
pub mod timing;

pub use address::{Addr, Region, LINE_SIZE, PAGE_SIZE};
pub use cache::SetAssocCache;
pub use error::MemError;
pub use placement::{GpmId, PageTable, Placement};
pub use stats::{LinkMatrix, Traffic, TrafficClass};
pub use substrate::{batch_stats, record_batch_group, BatchStats};
pub use system::{AccessLevel, BatchSession, MemConfig, MemOp, MemorySystem, OpKind};
pub use timing::{BandwidthServer, Cycle, NumaTiming, RateSchedule};
