//! Bandwidth/timing model: DRAM channels and NVLinks as FIFO servers.
//!
//! Table 2 of the paper: 1 TB/s local DRAM per GPM, 64 GB/s unidirectional
//! NVLink per GPM pair, 1 GHz clock. At 1 GHz, 1 TB/s = 1000 B/cycle and
//! 64 GB/s = 64 B/cycle. Each server drains a FIFO of byte quanta; the
//! completion time of a transfer is when the server has drained it, which
//! models both bandwidth and queueing delay without per-packet events.

use crate::placement::GpmId;
use crate::stats::Traffic;

/// Simulation time in GPU clock cycles (1 GHz per Table 2).
pub type Cycle = u64;

/// A FIFO bandwidth server: `bytes_per_cycle` of service rate.
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    bytes_per_cycle: f64,
    /// Time at which previously queued work drains.
    free_at_fp: f64,
    /// Fixed latency added to every transfer (propagation + protocol).
    latency: Cycle,
    /// Total bytes served (utilization accounting).
    served: u64,
    /// Busy cycles accumulated.
    busy: f64,
}

impl BandwidthServer {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        BandwidthServer { bytes_per_cycle, free_at_fp: 0.0, latency, served: 0, busy: 0.0 }
    }

    /// Enqueues a transfer of `bytes` arriving at `now`; returns the cycle
    /// at which the last byte is delivered.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let start = self.free_at_fp.max(now as f64);
        let service = bytes as f64 / self.bytes_per_cycle;
        self.free_at_fp = start + service;
        self.served += bytes;
        self.busy += service;
        (self.free_at_fp.ceil() as Cycle) + self.latency
    }

    /// Time the server becomes idle (ignoring latency).
    pub fn free_at(&self) -> Cycle {
        self.free_at_fp.ceil() as Cycle
    }

    /// Total bytes served.
    pub fn served_bytes(&self) -> u64 {
        self.served
    }

    /// Busy cycles accumulated.
    pub fn busy_cycles(&self) -> f64 {
        self.busy
    }

    /// Service rate in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }
}

/// Timing parameters of the NUMA fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricParams {
    /// Local DRAM bandwidth per GPM, bytes/cycle (Table 2: 1000).
    pub dram_bytes_per_cycle: f64,
    /// Link bandwidth per directed GPM pair, bytes/cycle (Table 2: 64).
    pub link_bytes_per_cycle: f64,
    /// DRAM access latency in cycles. Kept small: a quantum represents
    /// thousands of in-flight threads whose latency the GPU hides (§6.2 of
    /// the paper: inter-GPM delays are "fully hidden by executing thousands
    /// of threads"); bandwidth, not latency, is the modeled bottleneck.
    pub dram_latency: Cycle,
    /// Additional link latency in cycles.
    pub link_latency: Cycle,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            dram_bytes_per_cycle: 1000.0,
            link_bytes_per_cycle: 64.0,
            dram_latency: 0,
            link_latency: 0,
        }
    }
}

/// The timed NUMA fabric: one DRAM server per GPM and one link server per
/// directed GPM pair (the paper assumes dedicated pairwise links: "each pair
/// of ports is used to connect two GPMs", §3).
#[derive(Debug, Clone)]
pub struct NumaTiming {
    n: usize,
    dram: Vec<BandwidthServer>,
    links: Vec<BandwidthServer>,
    params: FabricParams,
}

impl NumaTiming {
    /// Creates the fabric for `n_gpms` GPMs.
    pub fn new(n_gpms: usize, params: FabricParams) -> Self {
        assert!(n_gpms >= 1, "need at least one GPM");
        NumaTiming {
            n: n_gpms,
            dram: (0..n_gpms)
                .map(|_| BandwidthServer::new(params.dram_bytes_per_cycle, params.dram_latency))
                .collect(),
            links: (0..n_gpms * n_gpms)
                .map(|_| BandwidthServer::new(params.link_bytes_per_cycle, params.link_latency))
                .collect(),
            params,
        }
    }

    /// Fabric parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Applies a drained [`Traffic`] ledger starting at `now`; returns the
    /// cycle at which all of its transfers complete.
    ///
    /// DRAM bytes are charged to each GPM's DRAM server; link bytes to each
    /// directed link server. The maximum completion across servers is the
    /// ready time of the work quantum that generated the traffic — the
    /// quantum stalls on its slowest resource, which is exactly the
    /// remote-bandwidth bottleneck mechanism of the paper.
    pub fn apply(&mut self, now: Cycle, traffic: &Traffic) -> Cycle {
        let mut ready = now;
        for (i, &bytes) in traffic.dram.iter().enumerate() {
            if bytes > 0 {
                ready = ready.max(self.dram[i].transfer(now, bytes));
            }
        }
        for from in 0..self.n {
            for to in 0..self.n {
                let bytes = traffic.links.get(GpmId(from as u8), GpmId(to as u8));
                if bytes > 0 {
                    ready = ready.max(self.links[from * self.n + to].transfer(now, bytes));
                }
            }
        }
        ready
    }

    /// The DRAM server of one GPM (for inspection).
    pub fn dram(&self, gpm: GpmId) -> &BandwidthServer {
        &self.dram[gpm.index()]
    }

    /// The directed link server `from → to` (for inspection).
    pub fn link(&self, from: GpmId, to: GpmId) -> &BandwidthServer {
        &self.links[from.index() * self.n + to.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrafficClass;

    #[test]
    fn server_serializes_transfers() {
        let mut s = BandwidthServer::new(10.0, 0);
        let t1 = s.transfer(0, 100); // 10 cycles
        let t2 = s.transfer(0, 100); // queued behind
        assert_eq!(t1, 10);
        assert_eq!(t2, 20);
        assert_eq!(s.served_bytes(), 200);
        // A transfer arriving after the queue drains starts immediately.
        let t3 = s.transfer(100, 10);
        assert_eq!(t3, 101);
    }

    #[test]
    fn latency_is_added_per_transfer() {
        let mut s = BandwidthServer::new(64.0, 100);
        assert_eq!(s.transfer(0, 64), 101);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut s = BandwidthServer::new(1.0, 50);
        assert_eq!(s.transfer(7, 0), 7);
    }

    #[test]
    fn fabric_bottleneck_is_slowest_resource() {
        let params = FabricParams {
            dram_bytes_per_cycle: 1000.0,
            link_bytes_per_cycle: 64.0,
            dram_latency: 0,
            link_latency: 0,
        };
        let mut fabric = NumaTiming::new(2, params);
        let mut t = Traffic::new(2);
        // 64 KB remote: DRAM at home takes 65.5 cycles, link takes 1024.
        t.add_remote(GpmId(1), GpmId(0), TrafficClass::Texture, 65536);
        let ready = fabric.apply(0, &t);
        assert_eq!(ready, 1024);
        assert_eq!(fabric.link(GpmId(1), GpmId(0)).served_bytes(), 65536);
    }

    #[test]
    fn local_traffic_uses_fast_dram() {
        let mut fabric = NumaTiming::new(
            2,
            FabricParams { dram_latency: 0, link_latency: 0, ..Default::default() },
        );
        let mut t = Traffic::new(2);
        t.add_local(GpmId(0), TrafficClass::Texture, 65536);
        let ready = fabric.apply(0, &t);
        assert_eq!(ready, 66); // 65536/1000 rounded up
    }

    #[test]
    fn pairwise_links_are_independent() {
        let mut fabric = NumaTiming::new(
            4,
            FabricParams { dram_latency: 0, link_latency: 0, ..Default::default() },
        );
        let mut t1 = Traffic::new(4);
        t1.add_link_only(GpmId(0), GpmId(1), TrafficClass::Composition, 6400);
        let mut t2 = Traffic::new(4);
        t2.add_link_only(GpmId(2), GpmId(3), TrafficClass::Composition, 6400);
        let r1 = fabric.apply(0, &t1);
        let r2 = fabric.apply(0, &t2);
        assert_eq!(r1, 100);
        assert_eq!(r2, 100, "disjoint pairs do not contend");
        // Same pair contends.
        let r3 = fabric.apply(0, &t1);
        assert_eq!(r3, 200);
    }
}
