//! Bandwidth/timing model: DRAM channels and NVLinks as FIFO servers.
//!
//! Table 2 of the paper: 1 TB/s local DRAM per GPM, 64 GB/s unidirectional
//! NVLink per GPM pair, 1 GHz clock. At 1 GHz, 1 TB/s = 1000 B/cycle and
//! 64 GB/s = 64 B/cycle. Each server drains a FIFO of byte quanta; the
//! completion time of a transfer is when the server has drained it, which
//! models both bandwidth and queueing delay without per-packet events.

use crate::placement::GpmId;
use crate::stats::Traffic;

/// Simulation time in GPU clock cycles (1 GHz per Table 2).
pub type Cycle = u64;

/// A piecewise-constant service-rate multiplier over simulated time.
///
/// Fault injection (link retrain, thermal throttling, transient stalls)
/// modulates a server's nominal rate: during a segment with multiplier `m`,
/// the server delivers `m ×` its nominal bytes/cycle (or, for a GPM pipeline
/// server, retires `m ×` its nominal compute). A multiplier of `0` models a
/// fully stalled window (e.g. an NVLink retraining). The schedule's *last*
/// segment extends forever and must have a positive multiplier, so every
/// transfer eventually completes.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    /// `(start_cycle, multiplier)` breakpoints, sorted by start. The first
    /// segment starts at cycle 0; each segment lasts until the next start.
    segments: Vec<(Cycle, f64)>,
}

impl RateSchedule {
    /// Creates a schedule from `(start_cycle, multiplier)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, does not start at cycle 0, has
    /// non-increasing starts, contains a negative or non-finite multiplier,
    /// or ends on a zero multiplier (the tail must make progress).
    pub fn new(segments: Vec<(Cycle, f64)>) -> Self {
        assert!(!segments.is_empty(), "rate schedule needs at least one segment");
        assert_eq!(segments[0].0, 0, "rate schedule must start at cycle 0");
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "rate schedule starts must be strictly increasing");
        }
        for &(_, m) in &segments {
            assert!(m.is_finite() && m >= 0.0, "rate multiplier must be finite and >= 0");
        }
        let last = segments.last().map(|&(_, m)| m).unwrap_or(0.0);
        assert!(last > 0.0, "final schedule segment must have a positive multiplier");
        RateSchedule { segments }
    }

    /// A constant schedule (useful as an explicit identity).
    pub fn constant(multiplier: f64) -> Self {
        RateSchedule::new(vec![(0, multiplier)])
    }

    /// The rate multiplier in effect at cycle `t`.
    pub fn multiplier_at(&self, t: Cycle) -> f64 {
        let i = self.segments.partition_point(|&(s, _)| s <= t);
        self.segments[i - 1].1
    }

    /// The `(start_cycle, multiplier)` breakpoints, sorted by start. Lets
    /// schedule *combinators* (e.g. the fault compiler's per-server product
    /// of a GPM schedule and a link schedule) walk the exact segment
    /// structure instead of sampling.
    pub fn segments(&self) -> &[(Cycle, f64)] {
        &self.segments
    }

    /// Completion time of `work` nominal cycles of service starting at
    /// `start` (both in fractional cycles): walks the segments, spending
    /// `multiplier × wall-time` of work in each. Zero-multiplier segments
    /// contribute wall time but no progress.
    pub fn advance(&self, start: f64, work: f64) -> f64 {
        self.advance_with_hint(0, start, work).0
    }

    /// Like [`advance`](Self::advance), but resumes the segment search from
    /// `hint` — the index returned by the previous call. Servers and GPM
    /// clocks only move forward in time, so a cached cursor replaces the
    /// per-call binary search with (usually) zero forward steps. A hint that
    /// does not cover `start` (stale, or out of range) falls back to the
    /// search, so any `hint` is safe and `0` reproduces [`advance`]
    /// exactly. Returns `(completion_time, segment_index_at_completion)`.
    pub fn advance_with_hint(&self, hint: usize, start: f64, work: f64) -> (f64, usize) {
        debug_assert!(work >= 0.0 && start >= 0.0);
        let mut pos = start.max(0.0);
        let mut left = work;
        let mut i = if hint < self.segments.len() && (self.segments[hint].0 as f64) <= pos {
            let mut i = hint;
            while i + 1 < self.segments.len() && (self.segments[i + 1].0 as f64) <= pos {
                i += 1;
            }
            i
        } else {
            self.segments.partition_point(|&(s, _)| (s as f64) <= pos).saturating_sub(1)
        };
        while i + 1 < self.segments.len() {
            let m = self.segments[i].1;
            let seg_end = self.segments[i + 1].0 as f64;
            let capacity = m * (seg_end - pos).max(0.0);
            if m > 0.0 && left <= capacity {
                return (pos + left / m, i);
            }
            left -= capacity;
            pos = seg_end;
            i += 1;
        }
        // Tail segment: positive multiplier guaranteed by the constructor.
        (pos + left / self.segments[i].1, i)
    }
}

/// A FIFO bandwidth server: `bytes_per_cycle` of service rate, optionally
/// modulated by a fault-injection [`RateSchedule`].
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    bytes_per_cycle: f64,
    /// Time at which previously queued work drains.
    free_at_fp: f64,
    /// Fixed latency added to every transfer (propagation + protocol).
    latency: Cycle,
    /// Total bytes served (utilization accounting).
    served: u64,
    /// Busy cycles accumulated.
    busy: f64,
    /// Time-varying rate multiplier; `None` is the exact fixed-rate path.
    schedule: Option<RateSchedule>,
    /// Segment cursor into `schedule` from the last transfer: a server's
    /// start times are monotone, so [`RateSchedule::advance_with_hint`]
    /// resumes here instead of re-searching the breakpoints.
    cursor: usize,
}

impl BandwidthServer {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        BandwidthServer {
            bytes_per_cycle,
            free_at_fp: 0.0,
            latency,
            served: 0,
            busy: 0.0,
            schedule: None,
            cursor: 0,
        }
    }

    /// Installs (or clears) a fault-injection rate schedule.
    pub fn set_schedule(&mut self, schedule: Option<RateSchedule>) {
        self.schedule = schedule;
        self.cursor = 0;
    }

    /// The installed rate schedule, if any.
    pub fn schedule(&self) -> Option<&RateSchedule> {
        self.schedule.as_ref()
    }

    /// Enqueues a transfer of `bytes` arriving at `now`; returns the cycle
    /// at which the last byte is delivered.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return now;
        }
        let start = self.free_at_fp.max(now as f64);
        let service = bytes as f64 / self.bytes_per_cycle;
        match &self.schedule {
            None => {
                self.free_at_fp = start + service;
                self.busy += service;
            }
            Some(s) => {
                let (end, cur) = s.advance_with_hint(self.cursor, start, service);
                self.cursor = cur;
                self.free_at_fp = end;
                self.busy += end - start;
            }
        }
        self.served += bytes;
        (self.free_at_fp.ceil() as Cycle) + self.latency
    }

    /// Time the server becomes idle (ignoring latency).
    pub fn free_at(&self) -> Cycle {
        self.free_at_fp.ceil() as Cycle
    }

    /// Queue depth at `now`, expressed as the number of cycles a request
    /// arriving at `now` would wait before the server is free. Used by the
    /// tracing layer's bandwidth-window samples; purely observational.
    pub fn queue_depth_at(&self, now: Cycle) -> Cycle {
        self.free_at().saturating_sub(now)
    }

    /// Total bytes served.
    pub fn served_bytes(&self) -> u64 {
        self.served
    }

    /// Busy cycles accumulated.
    pub fn busy_cycles(&self) -> f64 {
        self.busy
    }

    /// Service rate in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }
}

/// Timing parameters of the NUMA fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricParams {
    /// Local DRAM bandwidth per GPM, bytes/cycle (Table 2: 1000).
    pub dram_bytes_per_cycle: f64,
    /// Link bandwidth per directed GPM pair, bytes/cycle (Table 2: 64).
    pub link_bytes_per_cycle: f64,
    /// DRAM access latency in cycles. Kept small: a quantum represents
    /// thousands of in-flight threads whose latency the GPU hides (§6.2 of
    /// the paper: inter-GPM delays are "fully hidden by executing thousands
    /// of threads"); bandwidth, not latency, is the modeled bottleneck.
    pub dram_latency: Cycle,
    /// Additional link latency in cycles.
    pub link_latency: Cycle,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            dram_bytes_per_cycle: 1000.0,
            link_bytes_per_cycle: 64.0,
            dram_latency: 0,
            link_latency: 0,
        }
    }
}

/// The timed NUMA fabric: one DRAM server per GPM and one link server per
/// directed GPM pair (the paper assumes dedicated pairwise links: "each pair
/// of ports is used to connect two GPMs", §3).
#[derive(Debug, Clone)]
pub struct NumaTiming {
    n: usize,
    dram: Vec<BandwidthServer>,
    links: Vec<BandwidthServer>,
    params: FabricParams,
}

impl NumaTiming {
    /// Creates the fabric for `n_gpms` GPMs.
    pub fn new(n_gpms: usize, params: FabricParams) -> Self {
        assert!(n_gpms >= 1, "need at least one GPM");
        NumaTiming {
            n: n_gpms,
            dram: (0..n_gpms)
                .map(|_| BandwidthServer::new(params.dram_bytes_per_cycle, params.dram_latency))
                .collect(),
            links: (0..n_gpms * n_gpms)
                .map(|_| BandwidthServer::new(params.link_bytes_per_cycle, params.link_latency))
                .collect(),
            params,
        }
    }

    /// Fabric parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Applies a drained [`Traffic`] ledger starting at `now`; returns the
    /// cycle at which all of its transfers complete.
    ///
    /// DRAM bytes are charged to each GPM's DRAM server; link bytes to each
    /// directed link server. The maximum completion across servers is the
    /// ready time of the work quantum that generated the traffic — the
    /// quantum stalls on its slowest resource, which is exactly the
    /// remote-bandwidth bottleneck mechanism of the paper.
    pub fn apply(&mut self, now: Cycle, traffic: &Traffic) -> Cycle {
        let mut ready = now;
        for (i, &bytes) in traffic.dram.iter().enumerate() {
            if bytes > 0 {
                ready = ready.max(self.dram[i].transfer(now, bytes));
            }
        }
        for from in 0..self.n {
            for to in 0..self.n {
                let bytes = traffic.links.get(GpmId(from as u8), GpmId(to as u8));
                if bytes > 0 {
                    ready = ready.max(self.links[from * self.n + to].transfer(now, bytes));
                }
            }
        }
        ready
    }

    /// The DRAM server of one GPM (for inspection).
    pub fn dram(&self, gpm: GpmId) -> &BandwidthServer {
        &self.dram[gpm.index()]
    }

    /// The directed link server `from → to` (for inspection).
    pub fn link(&self, from: GpmId, to: GpmId) -> &BandwidthServer {
        &self.links[from.index() * self.n + to.index()]
    }

    /// Installs a fault schedule on the directed link `from → to`.
    pub fn set_link_schedule(&mut self, from: GpmId, to: GpmId, schedule: Option<RateSchedule>) {
        self.links[from.index() * self.n + to.index()].set_schedule(schedule);
    }

    /// Installs a fault schedule on one GPM's DRAM server.
    pub fn set_dram_schedule(&mut self, gpm: GpmId, schedule: Option<RateSchedule>) {
        self.dram[gpm.index()].set_schedule(schedule);
    }

    /// The rate multiplier on the directed link `from → to` at cycle `t`
    /// (`1.0` when no schedule is installed). The runtime's reachability
    /// probe: a multiplier of `0` means the link is down (retraining).
    pub fn link_multiplier_at(&self, from: GpmId, to: GpmId, t: Cycle) -> f64 {
        match self.links[from.index() * self.n + to.index()].schedule() {
            None => 1.0,
            Some(s) => s.multiplier_at(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrafficClass;

    #[test]
    fn server_serializes_transfers() {
        let mut s = BandwidthServer::new(10.0, 0);
        let t1 = s.transfer(0, 100); // 10 cycles
        let t2 = s.transfer(0, 100); // queued behind
        assert_eq!(t1, 10);
        assert_eq!(t2, 20);
        assert_eq!(s.served_bytes(), 200);
        // A transfer arriving after the queue drains starts immediately.
        let t3 = s.transfer(100, 10);
        assert_eq!(t3, 101);
    }

    #[test]
    fn latency_is_added_per_transfer() {
        let mut s = BandwidthServer::new(64.0, 100);
        assert_eq!(s.transfer(0, 64), 101);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut s = BandwidthServer::new(1.0, 50);
        assert_eq!(s.transfer(7, 0), 7);
    }

    #[test]
    fn fabric_bottleneck_is_slowest_resource() {
        let params = FabricParams {
            dram_bytes_per_cycle: 1000.0,
            link_bytes_per_cycle: 64.0,
            dram_latency: 0,
            link_latency: 0,
        };
        let mut fabric = NumaTiming::new(2, params);
        let mut t = Traffic::new(2);
        // 64 KB remote: DRAM at home takes 65.5 cycles, link takes 1024.
        t.add_remote(GpmId(1), GpmId(0), TrafficClass::Texture, 65536);
        let ready = fabric.apply(0, &t);
        assert_eq!(ready, 1024);
        assert_eq!(fabric.link(GpmId(1), GpmId(0)).served_bytes(), 65536);
    }

    #[test]
    fn local_traffic_uses_fast_dram() {
        let mut fabric = NumaTiming::new(
            2,
            FabricParams { dram_latency: 0, link_latency: 0, ..Default::default() },
        );
        let mut t = Traffic::new(2);
        t.add_local(GpmId(0), TrafficClass::Texture, 65536);
        let ready = fabric.apply(0, &t);
        assert_eq!(ready, 66); // 65536/1000 rounded up
    }

    #[test]
    fn schedule_multiplier_lookup() {
        let s = RateSchedule::new(vec![(0, 1.0), (100, 0.25), (200, 1.0)]);
        assert_eq!(s.multiplier_at(0), 1.0);
        assert_eq!(s.multiplier_at(99), 1.0);
        assert_eq!(s.multiplier_at(100), 0.25);
        assert_eq!(s.multiplier_at(199), 0.25);
        assert_eq!(s.multiplier_at(5000), 1.0);
    }

    #[test]
    fn schedule_advance_walks_segments() {
        // Full rate until 100, quarter rate until 200, full rate after.
        let s = RateSchedule::new(vec![(0, 1.0), (100, 0.25), (200, 1.0)]);
        // Fits entirely in the first segment.
        assert_eq!(s.advance(0.0, 50.0), 50.0);
        // 100 cycles of work starting at 50: 50 at full rate, 25 during the
        // quarter-rate window (its full capacity), 25 in the full-rate tail.
        assert_eq!(s.advance(50.0, 100.0), 225.0);
        // Starting inside the slow segment and spilling past it: segment
        // 100..200 has capacity 25 from t=100; 30 work = 25 there + 5 after.
        assert_eq!(s.advance(100.0, 30.0), 205.0);
    }

    #[test]
    fn schedule_zero_segment_stalls() {
        // Link down (retrain) between 10 and 20.
        let s = RateSchedule::new(vec![(0, 1.0), (10, 0.0), (20, 1.0)]);
        // 15 work from t=0: 10 done, stall to 20, 5 more.
        assert_eq!(s.advance(0.0, 15.0), 25.0);
        // Work arriving mid-stall waits out the outage.
        assert_eq!(s.advance(12.0, 1.0), 21.0);
    }

    #[test]
    #[should_panic(expected = "positive multiplier")]
    fn schedule_rejects_zero_tail() {
        let _ = RateSchedule::new(vec![(0, 1.0), (10, 0.0)]);
    }

    #[test]
    fn unity_schedule_matches_no_schedule() {
        let mut plain = BandwidthServer::new(64.0, 3);
        let mut scheduled = BandwidthServer::new(64.0, 3);
        scheduled.set_schedule(Some(RateSchedule::constant(1.0)));
        for (now, bytes) in [(0, 1000), (5, 64), (200, 77), (201, 1)] {
            assert_eq!(plain.transfer(now, bytes), scheduled.transfer(now, bytes));
        }
        assert_eq!(plain.free_at(), scheduled.free_at());
        assert_eq!(plain.served_bytes(), scheduled.served_bytes());
    }

    #[test]
    fn degraded_server_is_slower_and_busier() {
        let mut s = BandwidthServer::new(10.0, 0);
        s.set_schedule(Some(RateSchedule::new(vec![(0, 0.5)])));
        // 100 bytes = 10 nominal cycles of service at half rate = 20 cycles.
        assert_eq!(s.transfer(0, 100), 20);
        assert_eq!(s.busy_cycles(), 20.0);
    }

    #[test]
    fn fabric_schedule_installation() {
        let mut fabric = NumaTiming::new(
            2,
            FabricParams { dram_latency: 0, link_latency: 0, ..Default::default() },
        );
        fabric.set_link_schedule(
            GpmId(0),
            GpmId(1),
            Some(RateSchedule::new(vec![(0, 0.0), (1000, 1.0)])),
        );
        assert_eq!(fabric.link_multiplier_at(GpmId(0), GpmId(1), 500), 0.0);
        assert_eq!(fabric.link_multiplier_at(GpmId(0), GpmId(1), 1000), 1.0);
        assert_eq!(fabric.link_multiplier_at(GpmId(1), GpmId(0), 500), 1.0);
        let mut t = Traffic::new(2);
        t.add_link_only(GpmId(0), GpmId(1), TrafficClass::Composition, 64);
        // One nominal cycle of link work, but the link is down until 1000.
        assert_eq!(fabric.apply(0, &t), 1001);
    }

    #[test]
    fn pairwise_links_are_independent() {
        let mut fabric = NumaTiming::new(
            4,
            FabricParams { dram_latency: 0, link_latency: 0, ..Default::default() },
        );
        let mut t1 = Traffic::new(4);
        t1.add_link_only(GpmId(0), GpmId(1), TrafficClass::Composition, 6400);
        let mut t2 = Traffic::new(4);
        t2.add_link_only(GpmId(2), GpmId(3), TrafficClass::Composition, 6400);
        let r1 = fabric.apply(0, &t1);
        let r2 = fabric.apply(0, &t2);
        assert_eq!(r1, 100);
        assert_eq!(r2, 100, "disjoint pairs do not contend");
        // Same pair contends.
        let r3 = fabric.apply(0, &t1);
        assert_eq!(r3, 200);
    }
}
