//! NUMA page placement: the page table mapping pages to GPM memory homes.
//!
//! The baseline system uses the First-Touch policy with a remote cache
//! (§3, after \[5\]); AFR's separate memory spaces are modeled with
//! [`Placement::Replicated`]; tile schemes and the distributed hardware
//! composition pin framebuffer partitions with [`Placement::Fixed`]; OO-VR's
//! PA units call [`PageTable::migrate`] / [`PageTable::replicate`].

use std::collections::HashMap;
use std::fmt;

use crate::address::{Addr, Region};

/// Identifier of a GPU module (GPM) in the multi-GPU system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpmId(pub u8);

impl GpmId {
    /// All GPM ids for an `n`-GPM system.
    pub fn all(n: usize) -> impl Iterator<Item = GpmId> {
        (0..n as u8).map(GpmId)
    }

    /// The id as a usize index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for GpmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPM{}", self.0)
    }
}

/// Placement policy for a region of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Page homed at the first GPM that touches it (the baseline's policy).
    FirstTouch,
    /// Pages striped round-robin across GPMs by page index.
    Interleaved,
    /// All pages homed at one GPM (e.g. the master node's framebuffer in
    /// conventional object-level SFR).
    Fixed(GpmId),
    /// Data replicated in every GPM's DRAM: always a local access (AFR's
    /// separate memory spaces). Capacity accounting multiplies by GPM count.
    Replicated,
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    /// Home GPM id; [`UNPLACED`] marks an empty dense-table slot.
    home: u8,
    /// Bitmask of GPMs holding extra replicas (fine-grained stealing's
    /// duplicated data). Bit i set ⇒ GPM i can read the page locally.
    replicas: u16,
}

/// Sentinel home for an unplaced dense-table slot (GPM ids stop at 15).
const UNPLACED: u8 = 0xFF;
const EMPTY_ENTRY: PageEntry = PageEntry { home: UNPLACED, replicas: 0 };

/// log2 pages per dense chunk: 512 pages × 4 KiB = 2 MiB of address space.
const CHUNK_BITS: u32 = 9;
const CHUNK_PAGES: usize = 1 << CHUNK_BITS;
/// Pages below this index live in the dense chunked table (covers the low
/// 16 GiB of address space, where the simulator lays out all regions);
/// anything above spills to a hash map so sparse outliers stay cheap.
const DENSE_LIMIT: u64 = 1 << 22;

type Chunk = Box<[PageEntry; CHUNK_PAGES]>;

/// Maximum GPM count, fixing the lookaside array size.
pub const MAX_GPMS: usize = 16;
const NO_PAGE: u64 = u64::MAX;

/// The NUMA page table.
///
/// ```
/// use oovr_mem::{Addr, GpmId, PageTable, Placement};
///
/// let mut pt = PageTable::new(4, Placement::FirstTouch);
/// // GPM2 touches the page first and becomes its home.
/// assert_eq!(pt.resolve(Addr(0), GpmId(2)), GpmId(2));
/// assert_eq!(pt.resolve(Addr(0), GpmId(0)), GpmId(2)); // remote for GPM0
/// // OO-VR's PA unit migrates it next to its consumer.
/// assert_eq!(pt.migrate(Addr(0), GpmId(0)), Some(GpmId(2)));
/// assert_eq!(pt.resolve(Addr(0), GpmId(0)), GpmId(0)); // now local
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    n_gpms: usize,
    default_policy: Placement,
    /// Regions with explicit policies, sorted by base for binary search.
    regions: Vec<(Region, Placement)>,
    /// Dense translation for pages below [`DENSE_LIMIT`]: lazily allocated
    /// 512-page chunks indexed by `page >> CHUNK_BITS`. Translation is two
    /// array indexes instead of a hash probe.
    chunks: Vec<Option<Chunk>>,
    /// Sparse spill store for pages at or above [`DENSE_LIMIT`].
    overflow: HashMap<u64, PageEntry>,
    /// Count of placed pages across both stores.
    placed: usize,
    /// Per-accessor last-page lookaside: `(page, serving GPM)` of the most
    /// recent [`resolve`](Self::resolve). Streaming accesses hit the same
    /// page ~64 times in a row (4 KiB page / 64 B line), so this short-cuts
    /// the common case. Invalidated on migrate/replicate.
    lookaside: [(u64, GpmId); MAX_GPMS],
    /// Resident bytes per GPM (for capacity accounting), incremented at
    /// placement and replication time.
    resident: Vec<u64>,
}

impl PageTable {
    /// Creates a page table for `n_gpms` GPMs with a default policy.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpms` is 0 or greater than 16.
    pub fn new(n_gpms: usize, default_policy: Placement) -> Self {
        match Self::try_new(n_gpms, default_policy) {
            Ok(pt) => pt,
            Err(_) => panic!("supported GPM counts are 1..=16, got {n_gpms}"),
        }
    }

    /// Creates a page table, returning an error instead of panicking when
    /// `n_gpms` is outside the supported `1..=16` range.
    pub fn try_new(
        n_gpms: usize,
        default_policy: Placement,
    ) -> Result<Self, crate::error::MemError> {
        if !(1..=MAX_GPMS).contains(&n_gpms) {
            return Err(crate::error::MemError::TooManyGpms { requested: n_gpms });
        }
        Ok(PageTable {
            n_gpms,
            default_policy,
            regions: Vec::new(),
            chunks: Vec::new(),
            overflow: HashMap::new(),
            placed: 0,
            lookaside: [(NO_PAGE, GpmId(0)); MAX_GPMS],
            resident: vec![0; n_gpms],
        })
    }

    /// Checks that placing `requested_pages` more pages would not exceed the
    /// dense table's addressable capacity. The simulator lays out all scene
    /// regions below [`DENSE_LIMIT`] pages (16 GiB); a workload that would
    /// spill past it indicates a mis-scaled configuration, reported as a
    /// typed error rather than silent slow-path degradation.
    pub fn check_capacity(&self, requested_pages: u64) -> Result<(), crate::error::MemError> {
        let used = self.placed as u64;
        if used + requested_pages > DENSE_LIMIT {
            return Err(crate::error::MemError::PageTableExhausted {
                requested_pages,
                capacity_pages: DENSE_LIMIT - used.min(DENSE_LIMIT),
            });
        }
        Ok(())
    }

    /// Looks up a placed page's entry.
    #[inline]
    fn entry(&self, page: u64) -> Option<PageEntry> {
        if page < DENSE_LIMIT {
            let e = (*self.chunks.get((page >> CHUNK_BITS) as usize)?.as_ref()?)
                [page as usize & (CHUNK_PAGES - 1)];
            if e.home == UNPLACED {
                None
            } else {
                Some(e)
            }
        } else {
            self.overflow.get(&page).copied()
        }
    }

    /// Mutable access to a placed page's entry.
    #[inline]
    fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        if page < DENSE_LIMIT {
            let e = &mut self.chunks.get_mut((page >> CHUNK_BITS) as usize)?.as_mut()?
                [page as usize & (CHUNK_PAGES - 1)];
            if e.home == UNPLACED {
                None
            } else {
                Some(e)
            }
        } else {
            self.overflow.get_mut(&page)
        }
    }

    /// Places a page (must not already be placed).
    fn insert_entry(&mut self, page: u64, entry: PageEntry) {
        debug_assert_ne!(entry.home, UNPLACED);
        if page < DENSE_LIMIT {
            let ci = (page >> CHUNK_BITS) as usize;
            if ci >= self.chunks.len() {
                self.chunks.resize_with(ci + 1, || None);
            }
            let chunk = self.chunks[ci].get_or_insert_with(|| Box::new([EMPTY_ENTRY; CHUNK_PAGES]));
            chunk[page as usize & (CHUNK_PAGES - 1)] = entry;
        } else {
            self.overflow.insert(page, entry);
        }
        self.placed += 1;
    }

    /// Drops any lookaside line caching `page` (its mapping changed).
    fn invalidate_lookaside(&mut self, page: u64) {
        for slot in &mut self.lookaside {
            if slot.0 == page {
                slot.0 = NO_PAGE;
            }
        }
    }

    /// Number of GPMs.
    pub fn n_gpms(&self) -> usize {
        self.n_gpms
    }

    /// Registers an explicit placement policy for a region.
    pub fn set_policy(&mut self, region: Region, policy: Placement) {
        let idx = self.regions.partition_point(|(r, _)| r.base < region.base);
        self.regions.insert(idx, (region, policy));
    }

    fn policy_for(&self, addr: Addr) -> Placement {
        // Binary search the sorted region list for the last region whose
        // base is <= addr, then check containment.
        let idx = self.regions.partition_point(|(r, _)| r.base <= addr.0);
        if idx > 0 {
            let (r, p) = self.regions[idx - 1];
            if r.contains(addr) {
                return p;
            }
        }
        self.default_policy
    }

    /// Resolves the memory home serving `addr` for `accessor`, placing the
    /// page on first touch when the governing policy requires it.
    ///
    /// Returns the GPM whose DRAM services the access; equal to `accessor`
    /// means a local access.
    pub fn resolve(&mut self, addr: Addr, accessor: GpmId) -> GpmId {
        let page = addr.page();
        // Lookaside fast path: consecutive lines of the same page.
        let (cached_page, cached_serving) = self.lookaside[accessor.index()];
        if cached_page == page {
            return cached_serving;
        }
        if let Some(e) = self.entry(page) {
            let serving =
                if e.replicas & (1 << accessor.0) != 0 { accessor } else { GpmId(e.home) };
            self.lookaside[accessor.index()] = (page, serving);
            return serving;
        }
        let policy = self.policy_for(addr);
        let home = match policy {
            Placement::FirstTouch => accessor,
            Placement::Interleaved => GpmId((page % self.n_gpms as u64) as u8),
            Placement::Fixed(g) => g,
            Placement::Replicated => accessor,
        };
        let replicas = match policy {
            // Replicated data is resident everywhere.
            Placement::Replicated => {
                for r in &mut self.resident {
                    *r += crate::address::PAGE_SIZE;
                }
                (1u16 << self.n_gpms) - 1
            }
            _ => {
                self.resident[home.index()] += crate::address::PAGE_SIZE;
                0
            }
        };
        self.insert_entry(page, PageEntry { home: home.0, replicas });
        self.lookaside[accessor.index()] = (page, home);
        home
    }

    /// Home of a page if already placed.
    pub fn home_of(&self, addr: Addr) -> Option<GpmId> {
        self.entry(addr.page()).map(|e| GpmId(e.home))
    }

    /// Migrates a page to a new home (OO-VR PA unit pre-allocation).
    ///
    /// Returns the previous home when the page was already placed elsewhere
    /// (the caller charges the copy to the interconnect); `None` when the
    /// page was unplaced or already local (free placement).
    pub fn migrate(&mut self, addr: Addr, to: GpmId) -> Option<GpmId> {
        let page = addr.page();
        self.invalidate_lookaside(page);
        match self.entry_mut(page) {
            Some(e) if e.home == to.0 => None,
            Some(e) => {
                let from = GpmId(e.home);
                e.home = to.0;
                e.replicas = 0;
                self.resident[from.index()] =
                    self.resident[from.index()].saturating_sub(crate::address::PAGE_SIZE);
                self.resident[to.index()] += crate::address::PAGE_SIZE;
                Some(from)
            }
            None => {
                self.insert_entry(page, PageEntry { home: to.0, replicas: 0 });
                self.resident[to.index()] += crate::address::PAGE_SIZE;
                None
            }
        }
    }

    /// Adds a replica of the page at `at` (fine-grained stealing's data
    /// duplication). Returns the home to copy from, or `None` if the page
    /// was unplaced (in which case it is simply placed at `at`).
    pub fn replicate(&mut self, addr: Addr, at: GpmId) -> Option<GpmId> {
        let page = addr.page();
        self.invalidate_lookaside(page);
        match self.entry_mut(page) {
            Some(e) => {
                if e.home == at.0 || e.replicas & (1 << at.0) != 0 {
                    return None;
                }
                e.replicas |= 1 << at.0;
                let home = GpmId(e.home);
                self.resident[at.index()] += crate::address::PAGE_SIZE;
                Some(home)
            }
            None => {
                self.insert_entry(page, PageEntry { home: at.0, replicas: 0 });
                self.resident[at.index()] += crate::address::PAGE_SIZE;
                None
            }
        }
    }

    /// Resident bytes per GPM (capacity accounting; AFR's 4× footprint shows
    /// up here).
    pub fn resident_bytes(&self) -> &[u64] {
        &self.resident
    }

    /// Number of placed pages.
    pub fn placed_pages(&self) -> usize {
        self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PAGE_SIZE;

    #[test]
    fn first_touch_places_at_accessor() {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        let a = Addr(0);
        assert_eq!(pt.resolve(a, GpmId(2)), GpmId(2));
        // Second accessor sees the original home.
        assert_eq!(pt.resolve(a, GpmId(0)), GpmId(2));
        assert_eq!(pt.home_of(a), Some(GpmId(2)));
    }

    #[test]
    fn interleaved_stripes_by_page() {
        let mut pt = PageTable::new(4, Placement::Interleaved);
        for p in 0..8u64 {
            let home = pt.resolve(Addr(p * PAGE_SIZE), GpmId(0));
            assert_eq!(home, GpmId((p % 4) as u8));
        }
    }

    #[test]
    fn fixed_region_policy_overrides_default() {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        let region = Region { base: 4 * PAGE_SIZE, size: 2 * PAGE_SIZE };
        pt.set_policy(region, Placement::Fixed(GpmId(3)));
        assert_eq!(pt.resolve(Addr(4 * PAGE_SIZE), GpmId(0)), GpmId(3));
        assert_eq!(pt.resolve(Addr(0), GpmId(1)), GpmId(1)); // default FT
    }

    #[test]
    fn replicated_is_always_local() {
        let mut pt = PageTable::new(4, Placement::Replicated);
        assert_eq!(pt.resolve(Addr(0), GpmId(1)), GpmId(1));
        assert_eq!(pt.resolve(Addr(0), GpmId(3)), GpmId(3));
        // Resident on every GPM.
        assert!(pt.resident_bytes().iter().all(|&b| b == PAGE_SIZE));
    }

    #[test]
    fn migrate_reports_copy_source() {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        pt.resolve(Addr(0), GpmId(0));
        assert_eq!(pt.migrate(Addr(0), GpmId(2)), Some(GpmId(0)));
        assert_eq!(pt.resolve(Addr(0), GpmId(1)), GpmId(2));
        // Migrating to the current home is free.
        assert_eq!(pt.migrate(Addr(0), GpmId(2)), None);
        // Migrating an unplaced page is free placement.
        assert_eq!(pt.migrate(Addr(PAGE_SIZE * 10), GpmId(1)), None);
        assert_eq!(pt.resolve(Addr(PAGE_SIZE * 10), GpmId(3)), GpmId(1));
    }

    #[test]
    fn replicate_makes_access_local() {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        pt.resolve(Addr(0), GpmId(0));
        assert_eq!(pt.replicate(Addr(0), GpmId(3)), Some(GpmId(0)));
        assert_eq!(pt.resolve(Addr(0), GpmId(3)), GpmId(3));
        assert_eq!(pt.resolve(Addr(0), GpmId(1)), GpmId(0));
        // Replicating twice is a no-op.
        assert_eq!(pt.replicate(Addr(0), GpmId(3)), None);
    }

    #[test]
    fn resident_accounting() {
        let mut pt = PageTable::new(2, Placement::FirstTouch);
        pt.resolve(Addr(0), GpmId(0));
        pt.resolve(Addr(PAGE_SIZE), GpmId(1));
        assert_eq!(pt.resident_bytes(), &[PAGE_SIZE, PAGE_SIZE]);
        pt.migrate(Addr(0), GpmId(1));
        assert_eq!(pt.resident_bytes(), &[0, 2 * PAGE_SIZE]);
        assert_eq!(pt.placed_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "GPM counts")]
    fn zero_gpms_rejected() {
        let _ = PageTable::new(0, Placement::FirstTouch);
    }

    #[test]
    fn try_new_reports_bad_counts() {
        use crate::error::MemError;
        assert_eq!(
            PageTable::try_new(17, Placement::FirstTouch).err(),
            Some(MemError::TooManyGpms { requested: 17 })
        );
        assert!(PageTable::try_new(16, Placement::FirstTouch).is_ok());
    }

    #[test]
    fn capacity_check() {
        let mut pt = PageTable::new(2, Placement::FirstTouch);
        assert!(pt.check_capacity(1024).is_ok());
        let err = pt.check_capacity(u64::MAX / 2).unwrap_err();
        assert!(matches!(err, crate::error::MemError::PageTableExhausted { .. }));
        pt.resolve(Addr(0), GpmId(0));
        assert!(pt.check_capacity(0).is_ok());
    }
}
