//! The combined per-GPM memory system: caches + page table + traffic ledger.
//!
//! Each GPM has an aggregated L1 (the unified 128 KiB texture/L1 caches of
//! its 8 SMs, Table 2) and a memory-side L2 slice. Reads fill through
//! L1 → L2 → home DRAM; the home is resolved through the NUMA page table
//! and remote homes charge the inter-GPM link. Remote lines are cached in
//! L2 (the baseline's remote-cache scheme). Depth/color writes are
//! write-through with L2-presence coalescing: a write whose line is L2
//! resident is absorbed (write combining); otherwise a full line is charged
//! to the home — this keeps every byte attributed to its true traffic class.

use crate::address::{Addr, Region, LINE_SIZE, PAGE_SIZE};
use crate::cache::{CacheStats, SetAssocCache};
use crate::placement::{GpmId, PageTable, Placement};
use crate::stats::{Traffic, TrafficClass};

/// Cache configuration per GPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Aggregated L1 capacity per GPM in bytes (8 SMs × 128 KiB in Table 2).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 slice capacity per GPM in bytes (Table 2: 4 MiB / 4 GPMs).
    pub l2_bytes: u64,
    /// L2 associativity (Table 2: 16).
    pub l2_ways: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig { l1_bytes: 8 * 128 * 1024, l1_ways: 8, l2_bytes: 1024 * 1024, l2_ways: 16 }
    }
}

/// How one operation of a batched access stream touches the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read through L1 then L2 (texture/vertex streams).
    ReadL1,
    /// Read through L2 only (depth/ROP read paths).
    ReadL2,
    /// Write-through with L2-presence coalescing (depth/color output).
    Write,
}

/// One operation of a batched access stream: the executor's fragment
/// quantum collects these per (GPM, triangle) and replays them through
/// [`MemorySystem::run_batch`] in collection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Accessed byte address (any byte of the target line).
    pub addr: Addr,
    /// Traffic class charged on a DRAM miss.
    pub class: TrafficClass,
    /// Which hierarchy path the operation takes.
    pub kind: OpKind,
}

/// Per-batch fold state: the line left most-recently-used in each cache by
/// the previous operation of the batch that touched it. `u64::MAX` is not
/// line-aligned, so it matches no `line_base`.
struct FoldState {
    l1: u64,
    l2: u64,
    folded: u64,
}

impl FoldState {
    fn new() -> Self {
        FoldState { l1: u64::MAX, l2: u64::MAX, folded: 0 }
    }
}

/// Where a read was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Hit in the GPM's L1.
    L1,
    /// Hit in the GPM's L2 (possibly a cached remote line).
    L2,
    /// Filled from the GPM's own DRAM.
    LocalDram,
    /// Filled from another GPM's DRAM over the link.
    RemoteDram(GpmId),
}

/// The functional NUMA memory system of the multi-GPM package.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    page_table: PageTable,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    /// Ledger drained per work quantum for timing.
    pending: Traffic,
    /// Whether anything was recorded into `pending` since the last drain.
    /// Lets quanta with no memory traffic skip the ledger walk entirely.
    pending_any: bool,
    /// Cumulative ledger for end-of-frame reporting.
    total: Traffic,
}

impl MemorySystem {
    /// Creates the memory system for `n_gpms` GPMs.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpms` is outside `1..=16`; use
    /// [`try_new`](Self::try_new) for a fallible variant.
    pub fn new(n_gpms: usize, cfg: MemConfig, default_policy: Placement) -> Self {
        match Self::try_new(n_gpms, cfg, default_policy) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates the memory system, reporting invalid GPM counts as a typed
    /// error instead of panicking.
    pub fn try_new(
        n_gpms: usize,
        cfg: MemConfig,
        default_policy: Placement,
    ) -> Result<Self, crate::error::MemError> {
        Ok(MemorySystem {
            page_table: PageTable::try_new(n_gpms, default_policy)?,
            l1: (0..n_gpms)
                .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways, LINE_SIZE))
                .collect(),
            l2: (0..n_gpms)
                .map(|_| SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways, LINE_SIZE))
                .collect(),
            pending: Traffic::new(n_gpms),
            pending_any: false,
            total: Traffic::new(n_gpms),
        })
    }

    /// Number of GPMs.
    pub fn n_gpms(&self) -> usize {
        self.page_table.n_gpms()
    }

    /// The NUMA page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the NUMA page table (placement policies).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Reads the line containing `addr` from `gpm`. `use_l1` selects whether
    /// the stream goes through the GPM's L1 (texture/vertex reads do; depth
    /// reads go straight to L2 as in real ROP paths).
    ///
    /// Inlined so the texture/depth streams' cache hits resolve inside the
    /// executor's rasterization loop; only a miss in both cache levels takes
    /// the outlined DRAM continuation.
    #[inline]
    pub fn read(
        &mut self,
        gpm: GpmId,
        addr: Addr,
        class: TrafficClass,
        use_l1: bool,
    ) -> AccessLevel {
        let line = addr.line_base();
        let g = gpm.index();
        if use_l1 && self.l1[g].access(line, false).is_hit() {
            return AccessLevel::L1;
        }
        if self.l2[g].access(line, false).is_hit() {
            return AccessLevel::L2;
        }
        self.read_dram(gpm, line, class)
    }

    /// DRAM continuation of [`read`](Self::read): NUMA home resolution plus
    /// the pending/total ledger charges. Outlined — it runs only on misses.
    #[cold]
    fn read_dram(&mut self, gpm: GpmId, line: Addr, class: TrafficClass) -> AccessLevel {
        let home = self.page_table.resolve(line, gpm);
        self.pending_any = true;
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
            AccessLevel::LocalDram
        } else {
            self.pending.add_remote(home, gpm, class, LINE_SIZE);
            self.total.add_remote(home, gpm, class, LINE_SIZE);
            AccessLevel::RemoteDram(home)
        }
    }

    /// Writes the line containing `addr` from `gpm` (depth/color output).
    ///
    /// Write-through with L2-presence coalescing: L2-resident lines absorb
    /// the write; otherwise a full line is charged to the home and the line
    /// becomes L2 resident.
    ///
    /// Inlined for the same reason as [`read`](Self::read): the coalesced
    /// (L2-resident) case is the common one in the pixel-output stream.
    #[inline]
    pub fn write(&mut self, gpm: GpmId, addr: Addr, class: TrafficClass) {
        let line = addr.line_base();
        let g = gpm.index();
        if self.l2[g].access(line, false).is_hit() {
            return;
        }
        self.write_dram(gpm, line, class);
    }

    /// DRAM continuation of [`write`](Self::write) for non-coalesced writes.
    #[cold]
    fn write_dram(&mut self, gpm: GpmId, line: Addr, class: TrafficClass) {
        let home = self.page_table.resolve(line, gpm);
        self.pending_any = true;
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
        } else {
            // Write travels accessor → home.
            self.pending.dram[home.index()] += LINE_SIZE;
            self.total.dram[home.index()] += LINE_SIZE;
            self.pending.add_link_only(gpm, home, class, LINE_SIZE);
            self.total.add_link_only(gpm, home, class, LINE_SIZE);
        }
    }

    /// One read of a batched stream, with same-line run folding. `fold`
    /// carries the last line this batch left MRU in each cache: an access
    /// that repeats it is, in the scalar loop, *provably* the MRU fast path
    /// of [`SetAssocCache::access`] (every hit or fill leaves the touched
    /// line MRU in its set, and no other line touched this cache since), so
    /// it folds to a counted MRU hit with bit-identical outcome and state.
    #[inline]
    fn read_folded(
        &mut self,
        gpm: GpmId,
        line: Addr,
        class: TrafficClass,
        use_l1: bool,
        fold: &mut FoldState,
    ) -> AccessLevel {
        let g = gpm.index();
        if use_l1 {
            if line.0 == fold.l1 {
                self.l1[g].count_mru_hit();
                fold.folded += 1;
                return AccessLevel::L1;
            }
            fold.l1 = line.0;
            if self.l1[g].access(line, false).is_hit() {
                return AccessLevel::L1;
            }
        }
        if line.0 == fold.l2 {
            self.l2[g].count_mru_hit();
            fold.folded += 1;
            return AccessLevel::L2;
        }
        fold.l2 = line.0;
        if self.l2[g].access(line, false).is_hit() {
            return AccessLevel::L2;
        }
        self.read_dram(gpm, line, class)
    }

    /// One write of a batched stream; same folding rule as
    /// [`read_folded`](Self::read_folded). Writes probe L2 with
    /// `write == false` exactly like [`write`](Self::write), so a folded
    /// repeat is a pure counted hit (absorbed by coalescing).
    #[inline]
    fn write_folded(&mut self, gpm: GpmId, line: Addr, class: TrafficClass, fold: &mut FoldState) {
        let g = gpm.index();
        if line.0 == fold.l2 {
            self.l2[g].count_mru_hit();
            fold.folded += 1;
            return;
        }
        fold.l2 = line.0;
        if !self.l2[g].access(line, false).is_hit() {
            self.write_dram(gpm, line, class);
        }
    }

    /// Batched [`read`](Self::read): processes `addrs` in order, appending
    /// each access's [`AccessLevel`] to `out`.
    ///
    /// The outcome sequence, cache state, statistics, and traffic ledger
    /// are bit-identical to calling `read` once per address in the same
    /// order — the only difference is that runs of consecutive same-line
    /// accesses amortize set/tag lookup into a counted MRU hit (see
    /// [`SetAssocCache::count_mru_hit`]). `tests/prop_differential.rs`
    /// holds this equivalence over arbitrary streams.
    pub fn read_batch(
        &mut self,
        gpm: GpmId,
        addrs: &[Addr],
        class: TrafficClass,
        use_l1: bool,
        out: &mut Vec<AccessLevel>,
    ) {
        let mut fold = FoldState::new();
        out.reserve(addrs.len());
        for &a in addrs {
            let lvl = self.read_folded(gpm, a.line_base(), class, use_l1, &mut fold);
            out.push(lvl);
        }
        crate::substrate::record_batch(addrs.len() as u64, fold.folded);
    }

    /// Batched [`write`](Self::write): processes `addrs` in order, with the
    /// same bit-identical-to-scalar contract as
    /// [`read_batch`](Self::read_batch).
    pub fn write_batch(&mut self, gpm: GpmId, addrs: &[Addr], class: TrafficClass) {
        let mut fold = FoldState::new();
        for &a in addrs {
            self.write_folded(gpm, a.line_base(), class, &mut fold);
        }
        crate::substrate::record_batch(addrs.len() as u64, fold.folded);
    }

    /// Replays a mixed read/write stream collected into [`MemOp`]s, in
    /// collection order. This is the executor's per-quantum entry point:
    /// the fragment loop buffers its texel/depth/color accesses and replays
    /// them here before the quantum's traffic is drained.
    ///
    /// Equivalent, access for access, to dispatching each op through
    /// [`read`](Self::read)/[`write`](Self::write) in order; the fold
    /// amortizes same-line runs per cache (texture runs fold over L1
    /// without being broken by interleaved depth/color ops, which touch
    /// only L2).
    pub fn run_batch(&mut self, gpm: GpmId, ops: &[MemOp]) {
        let mut fold = FoldState::new();
        for op in ops {
            let line = op.addr.line_base();
            match op.kind {
                OpKind::ReadL1 => {
                    self.read_folded(gpm, line, op.class, true, &mut fold);
                }
                OpKind::ReadL2 => {
                    self.read_folded(gpm, line, op.class, false, &mut fold);
                }
                OpKind::Write => self.write_folded(gpm, line, op.class, &mut fold),
            }
        }
        crate::substrate::record_batch(ops.len() as u64, fold.folded);
    }

    /// Opens a streaming batch session: the zero-buffer form of
    /// [`run_batch`](Self::run_batch). The caller issues reads and writes
    /// directly (no `MemOp` materialization) and the session threads the
    /// same fold state through them, so same-line runs still collapse into
    /// counted MRU hits with the bit-identical-to-scalar contract proven
    /// for the slice APIs.
    ///
    /// Soundness requires that *nothing else* touches this system's caches
    /// while the session is open — the fold's "no other access intervened"
    /// premise. The borrow checker enforces it: the session holds the
    /// exclusive borrow of the system.
    pub fn batch(&mut self, gpm: GpmId) -> BatchSession<'_> {
        BatchSession { sys: self, gpm, fold: FoldState::new(), ops: 0 }
    }

    /// Transfers raw bytes over the link `from → to` (draw command
    /// distribution, composition pushes). Local (`from == to`) transfers
    /// charge DRAM only.
    pub fn transfer(&mut self, from: GpmId, to: GpmId, class: TrafficClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.pending_any = true;
        if from == to {
            self.pending.add_local(to, class, bytes);
            self.total.add_local(to, class, bytes);
        } else {
            self.pending.add_link_only(from, to, class, bytes);
            self.total.add_link_only(from, to, class, bytes);
        }
    }

    /// Pre-allocates (migrates) all pages of `region` to `to`, charging link
    /// transfers for pages that previously lived elsewhere (OO-VR PA units,
    /// §5.2). Returns the number of bytes copied over links.
    pub fn prealloc_region(&mut self, region: Region, to: GpmId) -> u64 {
        let mut moved = 0;
        for page in region.pages() {
            let addr = Addr(page * PAGE_SIZE);
            if let Some(from) = self.page_table.migrate(addr, to) {
                self.pending_any = true;
                self.pending.add_link_only(from, to, TrafficClass::PreAlloc, PAGE_SIZE);
                self.total.add_link_only(from, to, TrafficClass::PreAlloc, PAGE_SIZE);
                moved += PAGE_SIZE;
            }
        }
        moved
    }

    /// Replicates all pages of `region` at `at` (fine-grained stealing's
    /// data duplication, §5.2). Returns bytes copied over links.
    pub fn replicate_region(&mut self, region: Region, at: GpmId) -> u64 {
        let mut moved = 0;
        for page in region.pages() {
            let addr = Addr(page * PAGE_SIZE);
            if let Some(from) = self.page_table.replicate(addr, at) {
                self.pending_any = true;
                self.pending.add_link_only(from, at, TrafficClass::PreAlloc, PAGE_SIZE);
                self.total.add_link_only(from, at, TrafficClass::PreAlloc, PAGE_SIZE);
                moved += PAGE_SIZE;
            }
        }
        moved
    }

    /// Whether any traffic was recorded since the last drain. Cheap flag
    /// check so quanta that touched no memory skip draining altogether.
    pub fn has_pending(&self) -> bool {
        self.pending_any
    }

    /// Drains and returns the pending (since last drain) traffic ledger.
    pub fn drain_pending(&mut self) -> Traffic {
        let mut out = Traffic::new(self.n_gpms());
        self.drain_pending_into(&mut out);
        out
    }

    /// Drains the pending ledger into a caller-owned scratch `Traffic`,
    /// swapping buffers instead of allocating. `out`'s previous contents are
    /// discarded; it is resized if its GPM count does not match.
    pub fn drain_pending_into(&mut self, out: &mut Traffic) {
        if out.n_gpms() != self.n_gpms() {
            *out = Traffic::new(self.n_gpms());
        }
        std::mem::swap(&mut self.pending, out);
        self.pending.clear();
        self.pending_any = false;
    }

    /// Discards the pending ledger without materializing it (callers that
    /// fold the traffic into `total` only).
    pub fn discard_pending(&mut self) {
        if self.pending_any {
            self.pending.clear();
            self.pending_any = false;
        }
    }

    /// The cumulative traffic ledger.
    pub fn total_traffic(&self) -> &Traffic {
        &self.total
    }

    /// L1 statistics of one GPM.
    pub fn l1_stats(&self, gpm: GpmId) -> CacheStats {
        self.l1[gpm.index()].stats()
    }

    /// L2 statistics of one GPM.
    pub fn l2_stats(&self, gpm: GpmId) -> CacheStats {
        self.l2[gpm.index()].stats()
    }

    /// Aggregate `(L1, L2)` statistics across every GPM, for samplers that
    /// want a fleet-level cache view without iterating GPMs themselves.
    pub fn cache_totals(&self) -> (CacheStats, CacheStats) {
        let fold = |caches: &[crate::SetAssocCache]| {
            caches.iter().map(|c| c.stats()).fold(CacheStats::default(), |mut acc, s| {
                acc.accesses += s.accesses;
                acc.hits += s.hits;
                acc.writebacks += s.writebacks;
                acc
            })
        };
        (fold(&self.l1), fold(&self.l2))
    }
}

/// A streaming batched-access session from [`MemorySystem::batch`].
///
/// Each access dispatches through the same folded core as
/// [`MemorySystem::run_batch`] — an access that continues a same-line run
/// in its cache collapses to a counted MRU hit; anything else takes the
/// exact scalar path. Outcomes, cache state, statistics, and traffic are
/// bit-identical to calling [`MemorySystem::read`] /
/// [`MemorySystem::write`] in the same order (pinned by the
/// `run_batch_matches_scalar_state` differential proptest, which drives
/// the shared fold core).
///
/// [`finish`](Self::finish) returns `(ops, folded)` so callers issuing
/// many small sessions (the executor opens one per triangle) can aggregate
/// counts in plain locals and flush them to the process-wide counters once
/// per render via [`crate::substrate::record_batch_group`].
pub struct BatchSession<'a> {
    sys: &'a mut MemorySystem,
    gpm: GpmId,
    fold: FoldState,
    ops: u64,
}

impl BatchSession<'_> {
    /// Read through L1 then L2 (texture/vertex streams).
    #[inline]
    pub fn read_l1(&mut self, addr: Addr, class: TrafficClass) -> AccessLevel {
        self.ops += 1;
        self.sys.read_folded(self.gpm, addr.line_base(), class, true, &mut self.fold)
    }

    /// Read through L2 only (depth/ROP read paths).
    ///
    /// Not folded: depth lines interleave with color writes in the op
    /// stream, so a same-line *consecutive* L2 run essentially never
    /// occurs — the scalar path's per-set MRU probe already catches the
    /// per-set recurrence the coarser per-cache fold cannot. Measured on
    /// the resilience sweep, folding here costs more in bookkeeping than
    /// it ever folds. The L1 fold channel is untouched by construction
    /// (this path never probes L1), so texture folding stays sound.
    #[inline]
    pub fn read_l2(&mut self, addr: Addr, class: TrafficClass) -> AccessLevel {
        self.ops += 1;
        self.fold.l2 = u64::MAX;
        self.sys.read(self.gpm, addr, class, false)
    }

    /// Write-through with L2-presence coalescing (depth/color output).
    ///
    /// Not folded, for the same measured reason as
    /// [`read_l2`](Self::read_l2); the L2 fold channel is re-armed so a
    /// later folded op cannot mistake this write's line state.
    #[inline]
    pub fn write(&mut self, addr: Addr, class: TrafficClass) {
        self.ops += 1;
        self.fold.l2 = u64::MAX;
        self.sys.write(self.gpm, addr, class);
    }

    /// Ends the session, returning `(ops, folded)` for aggregation.
    pub fn finish(self) -> (u64, u64) {
        (self.ops, self.fold.folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize) -> MemorySystem {
        MemorySystem::new(n, MemConfig::default(), Placement::FirstTouch)
    }

    #[test]
    fn read_fills_through_hierarchy() {
        let mut m = sys(2);
        assert_eq!(m.read(GpmId(0), Addr(0), TrafficClass::Texture, true), AccessLevel::LocalDram);
        assert_eq!(m.read(GpmId(0), Addr(0), TrafficClass::Texture, true), AccessLevel::L1);
        assert_eq!(m.read(GpmId(0), Addr(32), TrafficClass::Texture, true), AccessLevel::L1);
        // Other GPM misses its own caches and goes remote.
        assert_eq!(
            m.read(GpmId(1), Addr(0), TrafficClass::Texture, true),
            AccessLevel::RemoteDram(GpmId(0))
        );
        assert_eq!(m.total_traffic().inter_gpm_bytes(), LINE_SIZE);
        // Remote line is now L2-cached at GPM1 (remote cache scheme).
        assert_eq!(m.read(GpmId(1), Addr(0), TrafficClass::Texture, false), AccessLevel::L2);
    }

    #[test]
    fn write_coalescing_absorbs_repeat_writes() {
        let mut m = sys(2);
        m.write(GpmId(0), Addr(0), TrafficClass::Color);
        m.write(GpmId(0), Addr(16), TrafficClass::Color);
        m.write(GpmId(0), Addr(48), TrafficClass::Color);
        assert_eq!(m.total_traffic().local_of(TrafficClass::Color), LINE_SIZE);
    }

    #[test]
    fn remote_write_charges_link_toward_home() {
        let mut m = sys(2);
        // Page homed at GPM0 via first touch.
        m.read(GpmId(0), Addr(0), TrafficClass::Depth, false);
        // GPM1 writes a *different line* of the same page: remote write.
        m.write(GpmId(1), Addr(128), TrafficClass::Depth);
        assert_eq!(m.total_traffic().links.get(GpmId(1), GpmId(0)), LINE_SIZE);
    }

    #[test]
    fn prealloc_moves_pages_once() {
        let mut m = sys(2);
        // Home page 0 at GPM0.
        m.read(GpmId(0), Addr(0), TrafficClass::Texture, false);
        let region = Region { base: 0, size: PAGE_SIZE };
        let moved = m.prealloc_region(region, GpmId(1));
        assert_eq!(moved, PAGE_SIZE);
        assert_eq!(m.total_traffic().remote_of(TrafficClass::PreAlloc), PAGE_SIZE);
        // Second prealloc to the same GPM is free.
        assert_eq!(m.prealloc_region(region, GpmId(1)), 0);
        // Unplaced pages place for free.
        let region2 = Region { base: 4 * PAGE_SIZE, size: PAGE_SIZE };
        assert_eq!(m.prealloc_region(region2, GpmId(1)), 0);
    }

    #[test]
    fn replicate_region_localizes_reads() {
        let mut m = sys(2);
        m.read(GpmId(0), Addr(0), TrafficClass::Texture, false);
        let region = Region { base: 0, size: PAGE_SIZE };
        assert_eq!(m.replicate_region(region, GpmId(1)), PAGE_SIZE);
        // New cold line of that page read from GPM1 is now local.
        assert_eq!(
            m.read(GpmId(1), Addr(512), TrafficClass::Texture, false),
            AccessLevel::LocalDram
        );
    }

    #[test]
    fn drain_pending_resets_only_pending() {
        let mut m = sys(2);
        m.read(GpmId(0), Addr(0), TrafficClass::Vertex, false);
        let p = m.drain_pending();
        assert_eq!(p.local_bytes(), LINE_SIZE);
        assert!(m.drain_pending().is_empty());
        assert_eq!(m.total_traffic().local_bytes(), LINE_SIZE);
    }

    /// A small mixed stream with same-line runs, alternating classes, and
    /// cross-GPM conflict lines — enough to exercise every fold arm.
    fn mixed_ops() -> Vec<MemOp> {
        let mut ops = Vec::new();
        for i in 0..64u64 {
            let base = (i / 3) * LINE_SIZE * 7 % (LINE_SIZE * 40);
            // Texture-style run: repeated same-line L1 reads.
            for j in 0..(i % 4 + 1) {
                ops.push(MemOp {
                    addr: Addr(base + j % LINE_SIZE),
                    class: TrafficClass::Texture,
                    kind: OpKind::ReadL1,
                });
            }
            // Depth read + color writes + depth write, ROP-style.
            ops.push(MemOp {
                addr: Addr(4096 + base),
                class: TrafficClass::Depth,
                kind: OpKind::ReadL2,
            });
            ops.push(MemOp {
                addr: Addr(8192 + base),
                class: TrafficClass::Color,
                kind: OpKind::Write,
            });
            ops.push(MemOp {
                addr: Addr(8192 + base + 4),
                class: TrafficClass::Color,
                kind: OpKind::Write,
            });
            ops.push(MemOp {
                addr: Addr(4096 + base),
                class: TrafficClass::Depth,
                kind: OpKind::Write,
            });
        }
        ops
    }

    fn apply_scalar(m: &mut MemorySystem, gpm: GpmId, ops: &[MemOp]) -> Vec<AccessLevel> {
        let mut levels = Vec::new();
        for op in ops {
            match op.kind {
                OpKind::ReadL1 => levels.push(m.read(gpm, op.addr, op.class, true)),
                OpKind::ReadL2 => levels.push(m.read(gpm, op.addr, op.class, false)),
                OpKind::Write => m.write(gpm, op.addr, op.class),
            }
        }
        levels
    }

    #[test]
    fn run_batch_matches_scalar_loop_state() {
        let ops = mixed_ops();
        let mut scalar = sys(2);
        let mut batched = sys(2);
        apply_scalar(&mut scalar, GpmId(0), &ops);
        batched.run_batch(GpmId(0), &ops);
        assert_eq!(scalar.l1_stats(GpmId(0)), batched.l1_stats(GpmId(0)));
        assert_eq!(scalar.l2_stats(GpmId(0)), batched.l2_stats(GpmId(0)));
        assert_eq!(scalar.total_traffic(), batched.total_traffic());
        assert_eq!(scalar.drain_pending(), batched.drain_pending());
        // Final cache state must also agree: a fresh probe suffix behaves
        // identically on both systems.
        let probes = mixed_ops();
        assert_eq!(
            apply_scalar(&mut scalar, GpmId(1), &probes),
            apply_scalar(&mut batched, GpmId(1), &probes)
        );
    }

    #[test]
    fn read_batch_levels_match_scalar_reads() {
        let addrs: Vec<Addr> =
            (0..200u64).map(|i| Addr((i / 5) * LINE_SIZE * 3 % 6000 + i % 64)).collect();
        let mut scalar = sys(2);
        let mut batched = sys(2);
        let want: Vec<AccessLevel> =
            addrs.iter().map(|&a| scalar.read(GpmId(0), a, TrafficClass::Texture, true)).collect();
        let mut got = Vec::new();
        batched.read_batch(GpmId(0), &addrs, TrafficClass::Texture, true, &mut got);
        assert_eq!(want, got);
        assert_eq!(scalar.l1_stats(GpmId(0)), batched.l1_stats(GpmId(0)));
        assert_eq!(scalar.total_traffic(), batched.total_traffic());
    }

    #[test]
    fn write_batch_coalesces_like_scalar_writes() {
        let addrs: Vec<Addr> = (0..120u64).map(|i| Addr((i / 4) * LINE_SIZE + i % 60)).collect();
        let mut scalar = sys(2);
        let mut batched = sys(2);
        for &a in &addrs {
            scalar.write(GpmId(1), a, TrafficClass::Color);
        }
        batched.write_batch(GpmId(1), &addrs, TrafficClass::Color);
        assert_eq!(scalar.l2_stats(GpmId(1)), batched.l2_stats(GpmId(1)));
        assert_eq!(scalar.total_traffic(), batched.total_traffic());
    }

    #[test]
    fn batch_counters_record_folds() {
        let before = crate::substrate::batch_stats();
        let mut m = sys(1);
        let addrs = vec![Addr(0), Addr(8), Addr(16), Addr(64), Addr(70)];
        let mut out = Vec::new();
        m.read_batch(GpmId(0), &addrs, TrafficClass::Texture, true, &mut out);
        let after = crate::substrate::batch_stats();
        assert_eq!(after.batches - before.batches, 1);
        assert_eq!(after.ops - before.ops, 5);
        // Runs: [0,8,16] folds 2, [64,70] folds 1.
        assert_eq!(after.folded - before.folded, 3);
    }

    #[test]
    fn command_transfer_local_and_remote() {
        let mut m = sys(2);
        m.transfer(GpmId(0), GpmId(0), TrafficClass::Command, 256);
        m.transfer(GpmId(0), GpmId(1), TrafficClass::Command, 256);
        assert_eq!(m.total_traffic().inter_gpm_bytes(), 256);
        assert_eq!(m.total_traffic().local_of(TrafficClass::Command), 256);
    }
}
