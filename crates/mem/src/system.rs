//! The combined per-GPM memory system: caches + page table + traffic ledger.
//!
//! Each GPM has an aggregated L1 (the unified 128 KiB texture/L1 caches of
//! its 8 SMs, Table 2) and a memory-side L2 slice. Reads fill through
//! L1 → L2 → home DRAM; the home is resolved through the NUMA page table
//! and remote homes charge the inter-GPM link. Remote lines are cached in
//! L2 (the baseline's remote-cache scheme). Depth/color writes are
//! write-through with L2-presence coalescing: a write whose line is L2
//! resident is absorbed (write combining); otherwise a full line is charged
//! to the home — this keeps every byte attributed to its true traffic class.

use crate::address::{Addr, Region, LINE_SIZE, PAGE_SIZE};
use crate::cache::{CacheStats, SetAssocCache};
use crate::placement::{GpmId, PageTable, Placement};
use crate::stats::{Traffic, TrafficClass};

/// Cache configuration per GPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Aggregated L1 capacity per GPM in bytes (8 SMs × 128 KiB in Table 2).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 slice capacity per GPM in bytes (Table 2: 4 MiB / 4 GPMs).
    pub l2_bytes: u64,
    /// L2 associativity (Table 2: 16).
    pub l2_ways: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig { l1_bytes: 8 * 128 * 1024, l1_ways: 8, l2_bytes: 1024 * 1024, l2_ways: 16 }
    }
}

/// Where a read was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Hit in the GPM's L1.
    L1,
    /// Hit in the GPM's L2 (possibly a cached remote line).
    L2,
    /// Filled from the GPM's own DRAM.
    LocalDram,
    /// Filled from another GPM's DRAM over the link.
    RemoteDram(GpmId),
}

/// The functional NUMA memory system of the multi-GPM package.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    page_table: PageTable,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    /// Ledger drained per work quantum for timing.
    pending: Traffic,
    /// Whether anything was recorded into `pending` since the last drain.
    /// Lets quanta with no memory traffic skip the ledger walk entirely.
    pending_any: bool,
    /// Cumulative ledger for end-of-frame reporting.
    total: Traffic,
}

impl MemorySystem {
    /// Creates the memory system for `n_gpms` GPMs.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpms` is outside `1..=16`; use
    /// [`try_new`](Self::try_new) for a fallible variant.
    pub fn new(n_gpms: usize, cfg: MemConfig, default_policy: Placement) -> Self {
        match Self::try_new(n_gpms, cfg, default_policy) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates the memory system, reporting invalid GPM counts as a typed
    /// error instead of panicking.
    pub fn try_new(
        n_gpms: usize,
        cfg: MemConfig,
        default_policy: Placement,
    ) -> Result<Self, crate::error::MemError> {
        Ok(MemorySystem {
            page_table: PageTable::try_new(n_gpms, default_policy)?,
            l1: (0..n_gpms)
                .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways, LINE_SIZE))
                .collect(),
            l2: (0..n_gpms)
                .map(|_| SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways, LINE_SIZE))
                .collect(),
            pending: Traffic::new(n_gpms),
            pending_any: false,
            total: Traffic::new(n_gpms),
        })
    }

    /// Number of GPMs.
    pub fn n_gpms(&self) -> usize {
        self.page_table.n_gpms()
    }

    /// The NUMA page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the NUMA page table (placement policies).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Reads the line containing `addr` from `gpm`. `use_l1` selects whether
    /// the stream goes through the GPM's L1 (texture/vertex reads do; depth
    /// reads go straight to L2 as in real ROP paths).
    ///
    /// Inlined so the texture/depth streams' cache hits resolve inside the
    /// executor's rasterization loop; only a miss in both cache levels takes
    /// the outlined DRAM continuation.
    #[inline]
    pub fn read(
        &mut self,
        gpm: GpmId,
        addr: Addr,
        class: TrafficClass,
        use_l1: bool,
    ) -> AccessLevel {
        let line = addr.line_base();
        let g = gpm.index();
        if use_l1 && self.l1[g].access(line, false).is_hit() {
            return AccessLevel::L1;
        }
        if self.l2[g].access(line, false).is_hit() {
            return AccessLevel::L2;
        }
        self.read_dram(gpm, line, class)
    }

    /// DRAM continuation of [`read`](Self::read): NUMA home resolution plus
    /// the pending/total ledger charges. Outlined — it runs only on misses.
    #[cold]
    fn read_dram(&mut self, gpm: GpmId, line: Addr, class: TrafficClass) -> AccessLevel {
        let home = self.page_table.resolve(line, gpm);
        self.pending_any = true;
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
            AccessLevel::LocalDram
        } else {
            self.pending.add_remote(home, gpm, class, LINE_SIZE);
            self.total.add_remote(home, gpm, class, LINE_SIZE);
            AccessLevel::RemoteDram(home)
        }
    }

    /// Writes the line containing `addr` from `gpm` (depth/color output).
    ///
    /// Write-through with L2-presence coalescing: L2-resident lines absorb
    /// the write; otherwise a full line is charged to the home and the line
    /// becomes L2 resident.
    ///
    /// Inlined for the same reason as [`read`](Self::read): the coalesced
    /// (L2-resident) case is the common one in the pixel-output stream.
    #[inline]
    pub fn write(&mut self, gpm: GpmId, addr: Addr, class: TrafficClass) {
        let line = addr.line_base();
        let g = gpm.index();
        if self.l2[g].access(line, false).is_hit() {
            return;
        }
        self.write_dram(gpm, line, class);
    }

    /// DRAM continuation of [`write`](Self::write) for non-coalesced writes.
    #[cold]
    fn write_dram(&mut self, gpm: GpmId, line: Addr, class: TrafficClass) {
        let home = self.page_table.resolve(line, gpm);
        self.pending_any = true;
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
        } else {
            // Write travels accessor → home.
            self.pending.dram[home.index()] += LINE_SIZE;
            self.total.dram[home.index()] += LINE_SIZE;
            self.pending.add_link_only(gpm, home, class, LINE_SIZE);
            self.total.add_link_only(gpm, home, class, LINE_SIZE);
        }
    }

    /// Transfers raw bytes over the link `from → to` (draw command
    /// distribution, composition pushes). Local (`from == to`) transfers
    /// charge DRAM only.
    pub fn transfer(&mut self, from: GpmId, to: GpmId, class: TrafficClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.pending_any = true;
        if from == to {
            self.pending.add_local(to, class, bytes);
            self.total.add_local(to, class, bytes);
        } else {
            self.pending.add_link_only(from, to, class, bytes);
            self.total.add_link_only(from, to, class, bytes);
        }
    }

    /// Pre-allocates (migrates) all pages of `region` to `to`, charging link
    /// transfers for pages that previously lived elsewhere (OO-VR PA units,
    /// §5.2). Returns the number of bytes copied over links.
    pub fn prealloc_region(&mut self, region: Region, to: GpmId) -> u64 {
        let mut moved = 0;
        for page in region.pages() {
            let addr = Addr(page * PAGE_SIZE);
            if let Some(from) = self.page_table.migrate(addr, to) {
                self.pending_any = true;
                self.pending.add_link_only(from, to, TrafficClass::PreAlloc, PAGE_SIZE);
                self.total.add_link_only(from, to, TrafficClass::PreAlloc, PAGE_SIZE);
                moved += PAGE_SIZE;
            }
        }
        moved
    }

    /// Replicates all pages of `region` at `at` (fine-grained stealing's
    /// data duplication, §5.2). Returns bytes copied over links.
    pub fn replicate_region(&mut self, region: Region, at: GpmId) -> u64 {
        let mut moved = 0;
        for page in region.pages() {
            let addr = Addr(page * PAGE_SIZE);
            if let Some(from) = self.page_table.replicate(addr, at) {
                self.pending_any = true;
                self.pending.add_link_only(from, at, TrafficClass::PreAlloc, PAGE_SIZE);
                self.total.add_link_only(from, at, TrafficClass::PreAlloc, PAGE_SIZE);
                moved += PAGE_SIZE;
            }
        }
        moved
    }

    /// Whether any traffic was recorded since the last drain. Cheap flag
    /// check so quanta that touched no memory skip draining altogether.
    pub fn has_pending(&self) -> bool {
        self.pending_any
    }

    /// Drains and returns the pending (since last drain) traffic ledger.
    pub fn drain_pending(&mut self) -> Traffic {
        let mut out = Traffic::new(self.n_gpms());
        self.drain_pending_into(&mut out);
        out
    }

    /// Drains the pending ledger into a caller-owned scratch `Traffic`,
    /// swapping buffers instead of allocating. `out`'s previous contents are
    /// discarded; it is resized if its GPM count does not match.
    pub fn drain_pending_into(&mut self, out: &mut Traffic) {
        if out.n_gpms() != self.n_gpms() {
            *out = Traffic::new(self.n_gpms());
        }
        std::mem::swap(&mut self.pending, out);
        self.pending.clear();
        self.pending_any = false;
    }

    /// Discards the pending ledger without materializing it (callers that
    /// fold the traffic into `total` only).
    pub fn discard_pending(&mut self) {
        if self.pending_any {
            self.pending.clear();
            self.pending_any = false;
        }
    }

    /// The cumulative traffic ledger.
    pub fn total_traffic(&self) -> &Traffic {
        &self.total
    }

    /// L1 statistics of one GPM.
    pub fn l1_stats(&self, gpm: GpmId) -> CacheStats {
        self.l1[gpm.index()].stats()
    }

    /// L2 statistics of one GPM.
    pub fn l2_stats(&self, gpm: GpmId) -> CacheStats {
        self.l2[gpm.index()].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize) -> MemorySystem {
        MemorySystem::new(n, MemConfig::default(), Placement::FirstTouch)
    }

    #[test]
    fn read_fills_through_hierarchy() {
        let mut m = sys(2);
        assert_eq!(m.read(GpmId(0), Addr(0), TrafficClass::Texture, true), AccessLevel::LocalDram);
        assert_eq!(m.read(GpmId(0), Addr(0), TrafficClass::Texture, true), AccessLevel::L1);
        assert_eq!(m.read(GpmId(0), Addr(32), TrafficClass::Texture, true), AccessLevel::L1);
        // Other GPM misses its own caches and goes remote.
        assert_eq!(
            m.read(GpmId(1), Addr(0), TrafficClass::Texture, true),
            AccessLevel::RemoteDram(GpmId(0))
        );
        assert_eq!(m.total_traffic().inter_gpm_bytes(), LINE_SIZE);
        // Remote line is now L2-cached at GPM1 (remote cache scheme).
        assert_eq!(m.read(GpmId(1), Addr(0), TrafficClass::Texture, false), AccessLevel::L2);
    }

    #[test]
    fn write_coalescing_absorbs_repeat_writes() {
        let mut m = sys(2);
        m.write(GpmId(0), Addr(0), TrafficClass::Color);
        m.write(GpmId(0), Addr(16), TrafficClass::Color);
        m.write(GpmId(0), Addr(48), TrafficClass::Color);
        assert_eq!(m.total_traffic().local_of(TrafficClass::Color), LINE_SIZE);
    }

    #[test]
    fn remote_write_charges_link_toward_home() {
        let mut m = sys(2);
        // Page homed at GPM0 via first touch.
        m.read(GpmId(0), Addr(0), TrafficClass::Depth, false);
        // GPM1 writes a *different line* of the same page: remote write.
        m.write(GpmId(1), Addr(128), TrafficClass::Depth);
        assert_eq!(m.total_traffic().links.get(GpmId(1), GpmId(0)), LINE_SIZE);
    }

    #[test]
    fn prealloc_moves_pages_once() {
        let mut m = sys(2);
        // Home page 0 at GPM0.
        m.read(GpmId(0), Addr(0), TrafficClass::Texture, false);
        let region = Region { base: 0, size: PAGE_SIZE };
        let moved = m.prealloc_region(region, GpmId(1));
        assert_eq!(moved, PAGE_SIZE);
        assert_eq!(m.total_traffic().remote_of(TrafficClass::PreAlloc), PAGE_SIZE);
        // Second prealloc to the same GPM is free.
        assert_eq!(m.prealloc_region(region, GpmId(1)), 0);
        // Unplaced pages place for free.
        let region2 = Region { base: 4 * PAGE_SIZE, size: PAGE_SIZE };
        assert_eq!(m.prealloc_region(region2, GpmId(1)), 0);
    }

    #[test]
    fn replicate_region_localizes_reads() {
        let mut m = sys(2);
        m.read(GpmId(0), Addr(0), TrafficClass::Texture, false);
        let region = Region { base: 0, size: PAGE_SIZE };
        assert_eq!(m.replicate_region(region, GpmId(1)), PAGE_SIZE);
        // New cold line of that page read from GPM1 is now local.
        assert_eq!(
            m.read(GpmId(1), Addr(512), TrafficClass::Texture, false),
            AccessLevel::LocalDram
        );
    }

    #[test]
    fn drain_pending_resets_only_pending() {
        let mut m = sys(2);
        m.read(GpmId(0), Addr(0), TrafficClass::Vertex, false);
        let p = m.drain_pending();
        assert_eq!(p.local_bytes(), LINE_SIZE);
        assert!(m.drain_pending().is_empty());
        assert_eq!(m.total_traffic().local_bytes(), LINE_SIZE);
    }

    #[test]
    fn command_transfer_local_and_remote() {
        let mut m = sys(2);
        m.transfer(GpmId(0), GpmId(0), TrafficClass::Command, 256);
        m.transfer(GpmId(0), GpmId(1), TrafficClass::Command, 256);
        assert_eq!(m.total_traffic().inter_gpm_bytes(), 256);
        assert_eq!(m.total_traffic().local_of(TrafficClass::Command), 256);
    }
}
