//! Typed errors for fallible memory-substrate operations.
//!
//! The simulator's library paths prefer `Result` over `panic!` so a harness
//! (e.g. the `figures` binary) can report a bad configuration per-experiment
//! instead of aborting the whole run. The panicking constructors remain as
//! thin wrappers for internal callers with already-validated inputs.

use std::fmt;

use crate::placement::MAX_GPMS;

/// Errors raised by the memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The requested GPM count is outside the supported `1..=16` range.
    TooManyGpms {
        /// The rejected count.
        requested: usize,
    },
    /// The page table would exceed its addressable capacity.
    PageTableExhausted {
        /// Pages the caller asked to place.
        requested_pages: u64,
        /// Pages the table can hold.
        capacity_pages: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::TooManyGpms { requested } => {
                write!(f, "supported GPM counts are 1..={MAX_GPMS}, got {requested}")
            }
            MemError::PageTableExhausted { requested_pages, capacity_pages } => write!(
                f,
                "page table exhausted: {requested_pages} pages requested, \
                 capacity is {capacity_pages}"
            ),
        }
    }
}

impl std::error::Error for MemError {}
