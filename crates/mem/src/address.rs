//! Byte addresses, cache lines, pages, and a bump allocator.

use std::fmt;

/// Cache line size in bytes (64 B, standard for GPU memory hierarchies).
pub const LINE_SIZE: u64 = 64;

/// Page size in bytes (4 KiB, the granularity of NUMA placement).
pub const PAGE_SIZE: u64 = 4096;

/// A byte address in the unified multi-GPM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache-line index containing this address.
    pub fn line(self) -> u64 {
        self.0 / LINE_SIZE
    }

    /// The page index containing this address.
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Address of the start of this address's cache line.
    pub fn line_base(self) -> Addr {
        Addr(self.0 & !(LINE_SIZE - 1))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A contiguous allocation in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether the region contains `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base && addr.0 < self.end()
    }

    /// Address at byte `offset` into the region.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `offset` exceeds the region size.
    pub fn at(&self, offset: u64) -> Addr {
        debug_assert!(offset < self.size, "offset {offset} out of region of size {}", self.size);
        Addr(self.base + offset)
    }

    /// Iterator over the page indices the region spans.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        let first = self.base / PAGE_SIZE;
        let last = (self.end().saturating_sub(1)) / PAGE_SIZE;
        first..=last
    }

    /// Number of cache lines the region spans.
    pub fn line_count(&self) -> u64 {
        if self.size == 0 {
            return 0;
        }
        let first = self.base / LINE_SIZE;
        let last = (self.end() - 1) / LINE_SIZE;
        last - first + 1
    }
}

/// Page-aligned bump allocator for the unified address space.
///
/// The graphics driver pre-allocates framebuffer and texture data before
/// rendering (§2.2); this allocator hands out those regions. Allocations are
/// page-aligned so placement decisions never split an allocation's line
/// across homes within one page.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Creates an empty address space starting at address 0.
    pub fn new() -> Self {
        AddressSpace { next: 0 }
    }

    /// Allocates `size` bytes, page aligned. Zero-sized allocations consume
    /// one page so that every region has a distinct base.
    pub fn alloc(&mut self, size: u64) -> Region {
        let base = self.next;
        let padded = size.max(1).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.next += padded;
        Region { base, size: size.max(1) }
    }

    /// Total bytes reserved so far (including alignment padding).
    pub fn reserved(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_math() {
        let a = Addr(PAGE_SIZE + LINE_SIZE + 3);
        assert_eq!(a.page(), 1);
        assert_eq!(a.line(), (PAGE_SIZE + LINE_SIZE) / LINE_SIZE);
        assert_eq!(a.line_base(), Addr(PAGE_SIZE + LINE_SIZE));
    }

    #[test]
    fn allocator_is_page_aligned_and_disjoint() {
        let mut space = AddressSpace::new();
        let a = space.alloc(100);
        let b = space.alloc(PAGE_SIZE * 2 + 1);
        assert_eq!(a.base % PAGE_SIZE, 0);
        assert_eq!(b.base % PAGE_SIZE, 0);
        assert!(a.end() <= b.base);
        assert_eq!(b.pages().count(), 3);
    }

    #[test]
    fn region_contains_and_at() {
        let r = Region { base: 4096, size: 128 };
        assert!(r.contains(Addr(4096)));
        assert!(r.contains(Addr(4223)));
        assert!(!r.contains(Addr(4224)));
        assert_eq!(r.at(64), Addr(4160));
        assert_eq!(r.line_count(), 2);
    }

    #[test]
    fn zero_sized_alloc_still_distinct() {
        let mut space = AddressSpace::new();
        let a = space.alloc(0);
        let b = space.alloc(0);
        assert_ne!(a.base, b.base);
    }
}
