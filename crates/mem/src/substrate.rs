//! Process-wide substrate counters for the batched memory paths.
//!
//! The batch APIs on [`crate::system::MemorySystem`] amortize cache
//! bookkeeping across runs of same-line accesses. These counters make that
//! amortization observable — `figures -- perf` snapshots them into
//! `BENCH_substrate.json` so a batching regression (run-lengths collapsing
//! to 1) shows up as a number next to the wall-clock it explains.
//!
//! Counters are process-wide relaxed atomics, tallied once per batch call
//! (not per access) so the hot loop carries plain locals. They are
//! diagnostics only: no simulated state reads them, so their values never
//! feed back into modeled results.

use std::sync::atomic::{AtomicU64, Ordering};

static BATCHES: AtomicU64 = AtomicU64::new(0);
static OPS: AtomicU64 = AtomicU64::new(0);
static FOLDED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the batched-memory counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch API invocations (`read_batch`, `write_batch`, `run_batch`).
    pub batches: u64,
    /// Total accesses processed through the batch APIs.
    pub ops: u64,
    /// Accesses folded into a counted MRU hit because they continued a
    /// same-line run (the amortized portion of `ops`).
    pub folded: u64,
}

impl BatchStats {
    /// Mean same-line run length seen by the batch paths: total accesses
    /// per run head (1.0 when nothing folds).
    pub fn mean_run_len(&self) -> f64 {
        let heads = self.ops - self.folded;
        if heads == 0 {
            0.0
        } else {
            self.ops as f64 / heads as f64
        }
    }
}

/// Tallies one batch invocation; called by the `MemorySystem` batch APIs.
pub(crate) fn record_batch(ops: u64, folded: u64) {
    if ops == 0 {
        return;
    }
    BATCHES.fetch_add(1, Ordering::Relaxed);
    OPS.fetch_add(ops, Ordering::Relaxed);
    FOLDED.fetch_add(folded, Ordering::Relaxed);
}

/// Tallies a pre-aggregated group of batch sessions in one shot. Streaming
/// consumers ([`crate::system::BatchSession`] holders like the executor)
/// accumulate per-session counts in plain locals and flush once per render,
/// keeping atomics entirely off the per-triangle path.
pub fn record_batch_group(batches: u64, ops: u64, folded: u64) {
    if ops == 0 {
        return;
    }
    BATCHES.fetch_add(batches, Ordering::Relaxed);
    OPS.fetch_add(ops, Ordering::Relaxed);
    FOLDED.fetch_add(folded, Ordering::Relaxed);
}

/// Current process-wide batched-memory counters.
pub fn batch_stats() -> BatchStats {
    BatchStats {
        batches: BATCHES.load(Ordering::Relaxed),
        ops: OPS.load(Ordering::Relaxed),
        folded: FOLDED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_run_len_handles_empty_and_folded() {
        assert_eq!(BatchStats::default().mean_run_len(), 0.0);
        let s = BatchStats { batches: 1, ops: 8, folded: 6 };
        assert_eq!(s.mean_run_len(), 4.0);
    }
}
