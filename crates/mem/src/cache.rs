//! Set-associative cache model with LRU replacement and write-back support.
//!
//! Used for each GPM's aggregated L1 (texture/vertex reads) and its
//! memory-side L2 (Table 2: 4 MiB total, 16-way). The model is functional —
//! it tracks presence and dirtiness per line to produce miss/write-back
//! traffic; it stores no data.

use crate::address::Addr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line was present.
    Hit,
    /// Line was absent and has been allocated. If a dirty victim was
    /// evicted, its line base address is carried here for write-back.
    Miss {
        /// Dirty line evicted to make room, if any.
        writeback: Option<Addr>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Tags are line numbers (< 2^58 with the modeled 64-byte lines — checked
/// by a debug assertion), so the two top bits hold the valid/dirty flags.
/// Packing the flags into the tag word keeps a way at 16 bytes: a whole
/// 8-way set then spans two 64-byte host cache lines instead of three, and
/// an MRU-probe hit touches exactly one.
const VALID: u64 = 1 << 63;
const DIRTY: u64 = 1 << 62;
const TAG_MASK: u64 = !(VALID | DIRTY);

#[derive(Debug, Clone, Copy)]
struct Way {
    /// `tag | VALID | DIRTY`.
    tf: u64,
    /// LRU stamp; larger is more recent.
    stamp: u64,
}

const EMPTY_WAY: Way = Way { tf: 0, stamp: 0 };

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0,1]`; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement.
///
/// ```
/// use oovr_mem::{Addr, SetAssocCache};
///
/// let mut l1 = SetAssocCache::new(128 * 1024, 8, 64);
/// assert!(!l1.access(Addr(0x1000), false).is_hit()); // cold miss
/// assert!(l1.access(Addr(0x1020), false).is_hit());  // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: usize,
    sets: usize,
    line_size: u64,
    /// `log2(line_size)` when the line size is a power of two, else
    /// `u32::MAX`: the per-access line computation is then a shift instead
    /// of a hardware divide by a runtime value.
    line_shift: u32,
    /// Way metadata, set-major.
    data: Vec<Way>,
    /// Most-recently-hit way index per set: texture/vertex streams touch the
    /// same line repeatedly, so one probe usually resolves the access
    /// without scanning the set.
    mru: Vec<u32>,
    /// The MRU way's `tf & !DIRTY` (i.e. `line | VALID`) per set, mirrored
    /// out of `data`. The dominant access — a read re-hitting the MRU line —
    /// is answered by comparing against this dense 8-byte-per-set array
    /// alone, so the hot loop's working set is this array (16 KiB for the
    /// L1) instead of the full way-metadata array (256 KiB), which no longer
    /// fits the host cache. Invariant: `mru_tag[s] ==
    /// data[s*ways + mru[s]].tf & !DIRTY`; zero (no VALID bit) matches no
    /// probe, covering reset and [`clear`](Self::clear).
    mru_tag: Vec<u64>,
    /// Previous MRU way per set, probed when the MRU tag misses: texture
    /// streams interleave texture and depth lines in a set, and one victim
    /// slot catches the alternation without a set scan.
    mru2: Vec<u32>,
    /// The previous MRU way's `tf & !DIRTY`, or zero when unknown (reset,
    /// [`clear`](Self::clear), direct-mapped eviction). Soundness invariant:
    /// whenever nonzero, `mru2_tag[s] == data[s*ways + mru2[s]].tf & !DIRTY`
    /// — a match proves the line is present in that way.
    mru2_tag: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_size`-byte lines. The set count is rounded down to a power of
    /// two (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or capacity is smaller than one way
    /// of lines.
    pub fn new(capacity_bytes: u64, ways: usize, line_size: u64) -> Self {
        assert!(
            capacity_bytes > 0 && ways > 0 && line_size > 0,
            "cache parameters must be nonzero"
        );
        let lines = capacity_bytes / line_size;
        assert!(lines >= ways as u64, "capacity must hold at least one set");
        let target = (lines / ways as u64).max(1);
        // Round down to a power of two so simple index masking works.
        let sets = (1u64 << (63 - target.leading_zeros())) as usize;
        let line_shift =
            if line_size.is_power_of_two() { line_size.trailing_zeros() } else { u32::MAX };
        SetAssocCache {
            ways,
            sets,
            line_size,
            line_shift,
            data: vec![EMPTY_WAY; sets * ways],
            mru: vec![0; sets],
            mru_tag: vec![0; sets],
            mru2: vec![0; sets],
            mru2_tag: vec![0; sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accumulated statistics. `accesses` is the access clock itself: both
    /// advance by exactly one per [`access`](Self::access), so the hot path
    /// maintains one counter and the other is materialized here.
    pub fn stats(&self) -> CacheStats {
        CacheStats { accesses: self.clock, ..self.stats }
    }

    /// Capacity in bytes actually modeled (sets × ways × line).
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    /// Allocates on miss (write-allocate); dirty victims are reported for
    /// write-back.
    ///
    /// Inlined so the dominant case — a read re-hitting the MRU line — folds
    /// into the caller's loop as a compare-and-count with no call overhead;
    /// anything else takes the outlined [`access_slow`](Self::access_slow).
    #[inline]
    pub fn access(&mut self, addr: Addr, write: bool) -> CacheOutcome {
        self.clock += 1;
        let line = if self.line_shift != u32::MAX {
            addr.0 >> self.line_shift
        } else {
            addr.0 / self.line_size
        };
        debug_assert!(line & !TAG_MASK == 0, "line number collides with flag bits");
        let set = (line as usize) & (self.sets - 1);
        let want = line | VALID;

        // MRU fast path: the way that hit last time in this set, probed via
        // the mirrored `mru_tag` array so a read hit never touches the way
        // metadata. The MRU way's stamp is NOT refreshed: every hit or fill
        // stamps the way it touches and points `mru` at it, so the MRU way
        // already holds its set's maximum stamp, and refreshing the maximum
        // cannot change any relative stamp order — victim selection stays
        // bit-identical. Write hits still set the way's dirty bit.
        if self.mru_tag[set] == want {
            if write {
                self.data[set * self.ways + self.mru[set] as usize].tf |= DIRTY;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        // Second probe: the previously-MRU way. Unlike the MRU way it does
        // not hold its set's maximum stamp, so a hit refreshes the stamp and
        // promotes — exactly what the scan's hit arm would have done.
        if self.mru2_tag[set] == want {
            let i = self.mru2[set];
            let w = &mut self.data[set * self.ways + i as usize];
            w.stamp = self.clock;
            if write {
                w.tf |= DIRTY;
            }
            self.stats.hits += 1;
            self.mru2[set] = self.mru[set];
            self.mru2_tag[set] = self.mru_tag[set];
            self.mru[set] = i;
            self.mru_tag[set] = want;
            return CacheOutcome::Hit;
        }
        self.access_slow(set, want, write)
    }

    /// Records one access that the caller has proven to be a read hit on
    /// its set's MRU way, without recomputing the set index or probing the
    /// tag. This is exactly the MRU fast path of [`access`](Self::access)
    /// for `write == false` — the clock advances and a hit is counted; the
    /// MRU way's stamp is (provably, see `access`) never refreshed, so no
    /// other state can change.
    ///
    /// # Soundness
    ///
    /// Callers must guarantee the accessed line is currently the MRU of its
    /// set. The batch paths in [`crate::system::MemorySystem`] establish
    /// this by only folding an access whose line equals the line of the
    /// immediately preceding access *to this cache*: every hit or fill
    /// leaves the touched line as its set's MRU, and no other set's state
    /// can invalidate that.
    #[inline]
    pub(crate) fn count_mru_hit(&mut self) {
        self.clock += 1;
        self.stats.hits += 1;
    }

    /// Non-MRU continuation of [`access`](Self::access): full set scan,
    /// victim selection, and fill. Outlined to keep the inlined fast path
    /// small.
    #[cold]
    fn access_slow(&mut self, set: usize, want: u64, write: bool) -> CacheOutcome {
        let base = set * self.ways;
        let ways = &mut self.data[base..base + self.ways];

        // Full hit scan; on the way, track the LRU victim so a miss needs no
        // second pass. Key order matches the original `min_by_key`: invalid
        // ways rank as 0, valid ways as stamp+1, first minimum wins.
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (i, w) in ways.iter_mut().enumerate() {
            if (w.tf & !DIRTY) == want {
                w.stamp = self.clock;
                if write {
                    w.tf |= DIRTY;
                }
                self.stats.hits += 1;
                self.mru2[set] = self.mru[set];
                self.mru2_tag[set] = self.mru_tag[set];
                self.mru[set] = i as u32;
                self.mru_tag[set] = want;
                return CacheOutcome::Hit;
            }
            let key = if w.tf & VALID != 0 { w.stamp + 1 } else { 0 };
            if key < victim_key {
                victim = i;
                victim_key = key;
            }
        }

        let old = ways[victim];
        ways[victim] = Way { tf: if write { want | DIRTY } else { want }, stamp: self.clock };
        // Demote the old MRU way — still resident, since the victim (minimum
        // key) can never be the valid maximum-stamp MRU way when the set has
        // two or more ways. Direct-mapped sets just evicted it: record
        // nothing.
        self.mru2[set] = self.mru[set];
        self.mru2_tag[set] = if self.ways == 1 { 0 } else { self.mru_tag[set] };
        self.mru[set] = victim as u32;
        self.mru_tag[set] = want;
        let writeback = if old.tf & (VALID | DIRTY) == (VALID | DIRTY) {
            self.stats.writebacks += 1;
            Some(Addr((old.tf & TAG_MASK) * self.line_size))
        } else {
            None
        };
        CacheOutcome::Miss { writeback }
    }

    /// Flushes all dirty lines, returning their base addresses (used at
    /// frame boundaries so lingering framebuffer lines are charged).
    pub fn flush_dirty(&mut self) -> Vec<Addr> {
        let mut out = Vec::new();
        self.flush_dirty_into(&mut out);
        out
    }

    /// Like [`flush_dirty`](Self::flush_dirty), but fills a caller-provided
    /// buffer (cleared first) so per-frame flushes reuse one allocation.
    pub fn flush_dirty_into(&mut self, out: &mut Vec<Addr>) {
        out.clear();
        for w in &mut self.data {
            if w.tf & (VALID | DIRTY) == (VALID | DIRTY) {
                out.push(Addr((w.tf & TAG_MASK) * self.line_size));
                w.tf &= !DIRTY;
            }
        }
        self.stats.writebacks += out.len() as u64;
    }

    /// Invalidates everything (keeps statistics).
    pub fn clear(&mut self) {
        for w in &mut self.data {
            w.tf = 0;
        }
        // Zero has no VALID bit, so no probe can match a cleared set.
        for t in &mut self.mru_tag {
            *t = 0;
        }
        for t in &mut self.mru2_tag {
            *t = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_kb(kb: u64, ways: usize) -> SetAssocCache {
        SetAssocCache::new(kb * 1024, ways, 64)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = cache_kb(4, 2);
        assert!(!c.access(Addr(0), false).is_hit());
        assert!(c.access(Addr(0), false).is_hit());
        assert!(c.access(Addr(63), false).is_hit(), "same line");
        assert!(!c.access(Addr(64), false).is_hit(), "next line");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, force a single set by using addresses that map to set 0.
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        assert_eq!(c.sets(), 1);
        c.access(Addr(0), false);
        c.access(Addr(64), false);
        c.access(Addr(0), false); // refresh line 0
        c.access(Addr(128), false); // evicts line 1 (LRU)
        assert!(c.access(Addr(0), false).is_hit());
        assert!(!c.access(Addr(64), false).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(Addr(0), true);
        c.access(Addr(64), false);
        // Next two fills evict both; line 0 was dirty.
        let out1 = c.access(Addr(128), false);
        let out2 = c.access(Addr(192), false);
        let wbs: Vec<_> = [out1, out2]
            .iter()
            .filter_map(|o| match o {
                CacheOutcome::Miss { writeback } => *writeback,
                CacheOutcome::Hit => None,
            })
            .collect();
        assert_eq!(wbs, vec![Addr(0)]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_dirty_returns_all_dirty_lines() {
        let mut c = cache_kb(4, 4);
        c.access(Addr(0), true);
        c.access(Addr(64), true);
        c.access(Addr(128), false);
        let mut d = c.flush_dirty();
        d.sort();
        assert_eq!(d, vec![Addr(0), Addr(64)]);
        assert!(c.flush_dirty().is_empty(), "second flush finds nothing");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = cache_kb(4, 4); // 64 lines
        for round in 0..2 {
            for i in 0..128u64 {
                let out = c.access(Addr(i * 64), false);
                if round == 0 {
                    assert!(!out.is_hit());
                }
            }
        }
        assert!(c.stats().hit_rate() < 0.1, "thrash hit rate {}", c.stats().hit_rate());
    }

    #[test]
    fn working_set_smaller_than_capacity_hits() {
        let mut c = cache_kb(4, 4);
        for _ in 0..4 {
            for i in 0..32u64 {
                c.access(Addr(i * 64), false);
            }
        }
        assert!(c.stats().hit_rate() > 0.7);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = cache_kb(4, 2);
        c.access(Addr(0), true);
        c.clear();
        assert!(!c.access(Addr(0), false).is_hit());
        assert!(c.flush_dirty().is_empty());
    }
}
