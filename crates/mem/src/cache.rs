//! Set-associative cache model with LRU replacement and write-back support.
//!
//! Used for each GPM's aggregated L1 (texture/vertex reads) and its
//! memory-side L2 (Table 2: 4 MiB total, 16-way). The model is functional —
//! it tracks presence and dirtiness per line to produce miss/write-back
//! traffic; it stores no data.

use crate::address::Addr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line was present.
    Hit,
    /// Line was absent and has been allocated. If a dirty victim was
    /// evicted, its line base address is carried here for write-back.
    Miss {
        /// Dirty line evicted to make room, if any.
        writeback: Option<Addr>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger is more recent.
    stamp: u64,
}

const EMPTY_WAY: Way = Way { tag: 0, valid: false, dirty: false, stamp: 0 };

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0,1]`; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement.
///
/// ```
/// use oovr_mem::{Addr, SetAssocCache};
///
/// let mut l1 = SetAssocCache::new(128 * 1024, 8, 64);
/// assert!(!l1.access(Addr(0x1000), false).is_hit()); // cold miss
/// assert!(l1.access(Addr(0x1020), false).is_hit());  // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: usize,
    sets: usize,
    line_size: u64,
    data: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_size`-byte lines. The set count is rounded down to a power of
    /// two (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or capacity is smaller than one way
    /// of lines.
    pub fn new(capacity_bytes: u64, ways: usize, line_size: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && line_size > 0, "cache parameters must be nonzero");
        let lines = capacity_bytes / line_size;
        assert!(lines >= ways as u64, "capacity must hold at least one set");
        let target = (lines / ways as u64).max(1);
        // Round down to a power of two so simple index masking works.
        let sets = (1u64 << (63 - target.leading_zeros())) as usize;
        SetAssocCache {
            ways,
            sets,
            line_size,
            data: vec![EMPTY_WAY; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Capacity in bytes actually modeled (sets × ways × line).
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    /// Allocates on miss (write-allocate); dirty victims are reported for
    /// write-back.
    pub fn access(&mut self, addr: Addr, write: bool) -> CacheOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr.0 / self.line_size;
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let base = set * self.ways;
        let ways = &mut self.data[base..base + self.ways];

        // Hit path.
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = self.clock;
            w.dirty |= write;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        // Miss: find victim (invalid first, else LRU).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        let old = ways[victim];
        ways[victim] = Way { tag, valid: true, dirty: write, stamp: self.clock };
        let writeback = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            Some(Addr(old.tag * self.line_size))
        } else {
            None
        };
        CacheOutcome::Miss { writeback }
    }

    /// Flushes all dirty lines, returning their base addresses (used at
    /// frame boundaries so lingering framebuffer lines are charged).
    pub fn flush_dirty(&mut self) -> Vec<Addr> {
        let mut out = Vec::new();
        for w in &mut self.data {
            if w.valid && w.dirty {
                out.push(Addr(w.tag * self.line_size));
                w.dirty = false;
            }
        }
        self.stats.writebacks += out.len() as u64;
        out
    }

    /// Invalidates everything (keeps statistics).
    pub fn clear(&mut self) {
        for w in &mut self.data {
            w.valid = false;
            w.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_kb(kb: u64, ways: usize) -> SetAssocCache {
        SetAssocCache::new(kb * 1024, ways, 64)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = cache_kb(4, 2);
        assert!(!c.access(Addr(0), false).is_hit());
        assert!(c.access(Addr(0), false).is_hit());
        assert!(c.access(Addr(63), false).is_hit(), "same line");
        assert!(!c.access(Addr(64), false).is_hit(), "next line");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, force a single set by using addresses that map to set 0.
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        assert_eq!(c.sets(), 1);
        c.access(Addr(0), false);
        c.access(Addr(64), false);
        c.access(Addr(0), false); // refresh line 0
        c.access(Addr(128), false); // evicts line 1 (LRU)
        assert!(c.access(Addr(0), false).is_hit());
        assert!(!c.access(Addr(64), false).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(Addr(0), true);
        c.access(Addr(64), false);
        // Next two fills evict both; line 0 was dirty.
        let out1 = c.access(Addr(128), false);
        let out2 = c.access(Addr(192), false);
        let wbs: Vec<_> = [out1, out2]
            .iter()
            .filter_map(|o| match o {
                CacheOutcome::Miss { writeback } => *writeback,
                CacheOutcome::Hit => None,
            })
            .collect();
        assert_eq!(wbs, vec![Addr(0)]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_dirty_returns_all_dirty_lines() {
        let mut c = cache_kb(4, 4);
        c.access(Addr(0), true);
        c.access(Addr(64), true);
        c.access(Addr(128), false);
        let mut d = c.flush_dirty();
        d.sort();
        assert_eq!(d, vec![Addr(0), Addr(64)]);
        assert!(c.flush_dirty().is_empty(), "second flush finds nothing");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = cache_kb(4, 4); // 64 lines
        for round in 0..2 {
            for i in 0..128u64 {
                let out = c.access(Addr(i * 64), false);
                if round == 0 {
                    assert!(!out.is_hit());
                }
            }
        }
        assert!(c.stats().hit_rate() < 0.1, "thrash hit rate {}", c.stats().hit_rate());
    }

    #[test]
    fn working_set_smaller_than_capacity_hits() {
        let mut c = cache_kb(4, 4);
        for _ in 0..4 {
            for i in 0..32u64 {
                c.access(Addr(i * 64), false);
            }
        }
        assert!(c.stats().hit_rate() > 0.7);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = cache_kb(4, 2);
        c.access(Addr(0), true);
        c.clear();
        assert!(!c.access(Addr(0), false).is_hit());
        assert!(c.flush_dirty().is_empty());
    }
}
