#!/usr/bin/env bash
# Pre-PR gate: everything CI would complain about, in one command.
#
#   ./scripts/check.sh          # build + tests + clippy + fmt
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
