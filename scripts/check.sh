#!/usr/bin/env bash
# Pre-PR gate: everything CI would complain about, in one command.
#
#   ./scripts/check.sh          # build + tests + clippy + fmt + golden digest
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo clippy --lib -W clippy::unwrap_used (library crates)"
# unwrap() on user-reachable library paths should go through OovrError
# instead; warn-level so legitimate internal invariants (with expect
# messages) don't block the gate, but new unwraps show up in review.
cargo clippy --lib -p oovr-scene -p oovr-mem -p oovr-gpu -p oovr-frameworks -p oovr \
    -- -W clippy::unwrap_used

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> figures verify (golden digest of fault-free tables)"
cargo run -q --release -p oovr-bench --bin figures -- verify

echo "==> figures smoke run (reduced scale: fig15 + resilience + cluster + chaos + temporal + metrics + health + edge)"
# Exercises the full table pipeline — scene cache, render memo, CSV
# emission — plus the fleet tier (capacity-vs-N and placement gates, the
# full chaos strictness sweep), the temporal-reuse sweep (reuse
# monotonicity and the OOVR+temporal capacity frontier gates), the
# metered serve table (which also refreshes results/metrics.prom, the
# source of the committed Prometheus golden), and the fleet health gate
# (SLO error budgets nominal and under link-down; run_health errors on
# any exhausted aggregate budget — including the edge tier's), and the
# split client-edge gates (degenerate-link identity, motion-to-photon
# ladder monotonicity, ATW strictly beating the bare client in every
# link-down chaos cell) at a scale small enough for a
# pre-commit hook. The run is timed against
# scripts/perf_baseline.txt (committed seconds for this smoke): a
# wall-clock blow-up past ~2x the baseline fails the gate loudly, so
# substrate regressions (a broken fold, a classifier that stops
# accepting, a cluster-scheduler rescan creeping back in, an unbounded
# per-session pose cache) surface here instead of in a multi-minute
# figures run.
SMOKE_START=$(date +%s.%N)
cargo run -q --release -p oovr-bench --bin figures -- --scale 0.05 fig15 resilience cluster chaos temporal metrics health edge
SMOKE_SECS=$(awk -v a="$SMOKE_START" -v b="$(date +%s.%N)" 'BEGIN { printf "%.2f", b - a }')
BASELINE=$(cat scripts/perf_baseline.txt)
awk -v t="$SMOKE_SECS" -v base="$BASELINE" 'BEGIN {
    limit = base * 2.0 + 1.0;  # 2x + 1s absolute slack for cold caches / load spikes
    printf "    smoke wall-clock %.2fs (baseline %.2fs, limit %.2fs)\n", t, base, limit;
    if (t > limit) {
        printf "PERF REGRESSION: fig15+resilience+cluster+chaos+temporal+metrics+health+edge smoke took %.2fs, over %.2fs (2x baseline %.2fs + 1s)\n", t, limit, base > "/dev/stderr";
        printf "If the slowdown is intentional, re-baseline scripts/perf_baseline.txt.\n" > "/dev/stderr";
        exit 1;
    }
}'

echo "==> figures serve (FULL scale: capacity table + QoS demo)"
# Runs the serving layer end to end — stream memoization, Eq. 3 admission,
# EDF scheduling, capacity search — and asserts OO-VR's capacity strictly
# exceeds the baseline's on every workload (run_serve errors otherwise).
# Full scale since the batched substrate made it affordable (~1 min on one
# core); this also regenerates results/serve.csv, which only happens at
# scale >= 1. serve.csv determinism and scheme ordering are pinned by
# tests/prop_serve.rs.
cargo run -q --release -p oovr-bench --bin figures -- serve

echo "==> figures trace-check (flight-recorder smoke: determinism + JSON validation)"
# Renders the demo frame traced twice: artifacts must be byte-identical,
# the Chrome JSON must parse and validate (monotone per-track timestamps,
# batch spans on every GPM, PA + steal instants), and the traced report
# must equal the untraced one.
cargo run -q --release -p oovr-bench --bin figures -- trace-check

echo "==> figures trace cluster (fleet failover smoke: link-down timeline)"
# Runs a small traced fleet under a seed-scanned link-down fault and
# fails unless the timeline actually shows server downs AND failovers —
# the cluster event vocabulary stays exercised end to end.
cargo run -q --release -p oovr-bench --bin figures -- --scale 0.05 trace cluster hl2-640

echo "==> figures trace temporal (reuse smoke: per-frame reuse events fire)"
# Serves a small OOVR+temporal run traced end to end and fails unless the
# timeline carries temporal_reuse events with at least one reused object
# — the pose-delta pricing stays wired through the scheduler and all
# three exporters.
cargo run -q --release -p oovr-bench --bin figures -- --scale 0.05 trace temporal hl2-640

echo "==> figures trace edge (split-rendering smoke: loss + reprojection events fire)"
# Runs a small traced client-edge session under a seed-scanned link-down
# fault and fails unless the timeline shows at least one FrameLost AND
# one FrameReprojected — the edge event vocabulary (sent / delivered /
# lost / reprojected / stale) stays exercised through all three
# exporters.
cargo run -q --release -p oovr-bench --bin figures -- --scale 0.05 trace edge hl2-640

echo "==> cargo bench --no-run (criterion benches stay compilable)"
cargo bench --no-run

echo "==> all checks passed"
