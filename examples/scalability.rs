//! Mini Fig. 18: speedup over a single GPM as the system grows to 8 GPMs.
//! The baseline saturates on its links; OO-VR keeps scaling.
//!
//! ```text
//! cargo run --release -p oovr --example scalability [scale]
//! ```

use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;
use oovr_scene::benchmarks;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let spec = benchmarks::ut3();
    let spec = if scale >= 1.0 { spec } else { spec.scaled(scale) };
    let scene = spec.build();
    println!("workload {} ({} draws)\n", scene.name(), scene.draw_count());

    let counts = [1usize, 2, 4, 8];
    print!("{:<14}", "scheme");
    for n in counts {
        print!(" {:>7}", format!("{n} GPM"));
    }
    println!();
    for kind in [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr] {
        print!("{:<14}", kind.label());
        let single = kind.render(&scene, &GpuConfig::default().with_n_gpms(1)).frame_cycles as f64;
        for n in counts {
            let cfg = GpuConfig::default().with_n_gpms(n);
            let cycles = kind.render(&scene, &cfg).frame_cycles as f64;
            print!(" {:>6.2}x", single / cycles);
        }
        println!();
    }
}
