//! Cold vs warm frames under OO-VR: the PA units distribute batch data on
//! the first frame; later frames find their pages in place. Also prints the
//! §6.2 link-energy comparison.
//!
//! ```text
//! cargo run --release -p oovr --example steady_state [scale]
//! ```

use oovr::schemes::OoVr;
use oovr_frameworks::{Baseline, RenderScheme};
use oovr_gpu::energy::EnergySummary;
use oovr_gpu::GpuConfig;
use oovr_mem::TrafficClass;
use oovr_scene::benchmarks;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let spec = benchmarks::hl2_1280();
    let spec = if scale >= 1.0 { spec } else { spec.scaled(scale) };
    let scene = spec.build();
    let cfg = GpuConfig::default();

    println!("workload {}\n", scene.name());
    let frames = OoVr::new().render_frames(&scene, &cfg, 4);
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12}",
        "frame", "cycles", "inter-GPM B", "PA bytes", "L1 hit"
    );
    for (i, f) in frames.iter().enumerate() {
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>11.1}%",
            i + 1,
            f.frame_cycles,
            f.inter_gpm_bytes(),
            f.traffic.remote_of(TrafficClass::PreAlloc),
            f.l1_hit_rate * 100.0
        );
    }

    let base = Baseline::new().render_frame(&scene, &cfg);
    let warm = frames.last().expect("at least one frame");
    let e_base = EnergySummary::of(&base.traffic);
    let e_oovr = EnergySummary::of(&warm.traffic);
    println!("\nlink energy per frame (§6.2):");
    println!(
        "  baseline: {:>8.1} µJ board-level, {:>9.1} µJ node-level",
        e_base.link_board_uj, e_base.link_node_uj
    );
    println!(
        "  OO-VR:    {:>8.1} µJ board-level, {:>9.1} µJ node-level  ({:.0}% saved)",
        e_oovr.link_board_uj,
        e_oovr.link_node_uj,
        100.0 * (1.0 - e_oovr.link_board_uj / e_base.link_board_uj)
    );
}
