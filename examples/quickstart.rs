//! Quickstart: render one VR frame under the baseline and under OO-VR and
//! compare performance and inter-GPM traffic.
//!
//! ```text
//! cargo run --release -p oovr --example quickstart
//! ```

use oovr::schemes::{OoApp, OoVr};
use oovr_frameworks::{Baseline, ObjectSfr, RenderScheme};
use oovr_gpu::GpuConfig;
use oovr_scene::benchmarks;

fn main() {
    // Half-Life 2 at 640×480, the paper's smallest evaluation point.
    // Swap in `benchmarks::nfs()` or `.scaled(0.25)` to experiment.
    let scene = benchmarks::hl2_640().build();
    println!(
        "scene {}: {} draws, {} triangles/eye, {} textures",
        scene.name(),
        scene.draw_count(),
        scene.total_triangles_per_eye(),
        scene.textures().len()
    );

    // Table 2's system: 4 GPMs, 64 GB/s NVLinks, 1 TB/s local DRAM.
    let cfg = GpuConfig::default();

    let schemes: Vec<Box<dyn RenderScheme>> = vec![
        Box::new(Baseline::new()),
        Box::new(ObjectSfr::new()),
        Box::new(OoApp::new()),
        Box::new(OoVr::new()),
    ];

    let baseline = Baseline::new().render_frame(&scene, &cfg);
    println!(
        "\n{:<14} {:>12} {:>9} {:>12} {:>10}",
        "scheme", "cycles", "speedup", "link bytes", "traffic"
    );
    for scheme in &schemes {
        let r = scheme.render_frame(&scene, &cfg);
        println!(
            "{:<14} {:>12} {:>8.2}x {:>12} {:>9.0}%",
            r.scheme,
            r.frame_cycles,
            baseline.frame_cycles as f64 / r.frame_cycles as f64,
            r.inter_gpm_bytes(),
            100.0 * r.inter_gpm_bytes() as f64 / baseline.inter_gpm_bytes().max(1) as f64,
        );
    }
    println!("\nOO-VR converts the baseline's remote texture stream into local reads:");
    let oovr = OoVr::new().render_frame(&scene, &cfg);
    for class in oovr_mem::TrafficClass::ALL {
        println!(
            "  {:<12} baseline {:>11} B remote   OO-VR {:>11} B remote",
            class.to_string(),
            baseline.traffic.remote_of(class),
            oovr.traffic.remote_of(class)
        );
    }
}
