//! Mini Fig. 17: how inter-GPM link bandwidth affects each scheme.
//! OO-VR should be nearly flat — it converted remote traffic to local.
//!
//! ```text
//! cargo run --release -p oovr --example bandwidth_study [scale]
//! ```

use oovr::experiments::SchemeKind;
use oovr_gpu::GpuConfig;
use oovr_scene::benchmarks;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let spec = benchmarks::hl2_1280();
    let spec = if scale >= 1.0 { spec } else { spec.scaled(scale) };
    let scene = spec.build();
    println!("workload {} ({} draws)\n", scene.name(), scene.draw_count());

    let bws = [32.0, 64.0, 128.0, 256.0, 1000.0];
    print!("{:<14}", "scheme");
    for bw in bws {
        print!(" {:>9}", format!("{bw:.0}GB/s"));
    }
    println!();
    for kind in [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr] {
        print!("{:<14}", kind.label());
        let base64 =
            kind.render(&scene, &GpuConfig::default().with_link_gbps(64.0)).frame_cycles as f64;
        for bw in bws {
            let cfg = GpuConfig::default().with_link_gbps(bw);
            let cycles = kind.render(&scene, &cfg).frame_cycles as f64;
            print!(" {:>8.2}x", base64 / cycles);
        }
        println!("   (relative to this scheme @64GB/s)");
    }
}
