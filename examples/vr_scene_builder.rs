//! Build a VR scene by hand through the object-oriented programming model
//! (§5.1) and inspect what the OO middleware does with it: the paper's
//! Fig. 12 "pillar1 / flag / pillar2" example, extended with dependencies.
//!
//! ```text
//! cargo run --release -p oovr --example vr_scene_builder
//! ```

use oovr::middleware::{build_batches, tsl, MiddlewareConfig};
use oovr::programming_model::OoApplication;
use oovr::schemes::OoVr;
use oovr_frameworks::RenderScheme;
use oovr_gpu::GpuConfig;
use oovr_scene::{ObjectId, SceneBuilder};

fn main() {
    // A VR chamber: two stone pillars sharing a texture, a cloth flag
    // between them, a stone floor, and a decal that must render after the
    // floor (a programmer-defined dependency).
    let scene = SceneBuilder::new(640, 480)
        .name("chamber")
        .texture("stone", 1024, 1024)
        .texture("cloth", 256, 256)
        .texture("decal", 128, 128)
        .object("pillar1", |o| {
            o.rect(0.05, 0.1, 0.18, 0.8).depth(0.4).grid(6, 24).texture("stone", 1.0);
        })
        .object("flag", |o| {
            o.rect(0.4, 0.15, 0.2, 0.3).depth(0.3).grid(8, 6).texture("cloth", 1.0);
        })
        .object("pillar2", |o| {
            o.rect(0.77, 0.1, 0.18, 0.8).depth(0.4).grid(6, 24).texture("stone", 1.0);
        })
        .object("floor", |o| {
            o.rect(0.0, 0.8, 1.0, 0.2)
                .depth(0.8)
                .grid(16, 4)
                .texture("stone", 0.7)
                .texture("decal", 0.3);
        })
        .object("floor_decal", |o| {
            o.rect(0.45, 0.85, 0.1, 0.1)
                .depth(0.79)
                .grid(2, 2)
                .texture("decal", 1.0)
                .depends_on(ObjectId(3));
        })
        .build();

    // The OO application merges each object's two eye views into one task.
    let app = OoApplication::new(&scene);
    println!("merged multi-view tasks:");
    for t in app.tasks() {
        println!(
            "  {:?}: {} triangles, viewportL x={:.0}, viewportR x={:.0}",
            scene.object(t.object).name(),
            t.triangles,
            t.viewport_l.x,
            t.viewport_r.x
        );
    }

    // Pairwise TSL (Eq. 1) for the Fig. 12 pair.
    let p1 = scene.object(ObjectId(0));
    let p2 = scene.object(ObjectId(2));
    let mix = |o: &oovr_scene::RenderObject| -> Vec<_> {
        o.textures().iter().map(|tu| (tu.texture, f64::from(tu.share))).collect()
    };
    println!("\nTSL(pillar1, pillar2) = {:.2} (> 0.5 ⇒ grouped)", tsl(&mix(p1), &mix(p2)));

    // Middleware batching.
    let batches = build_batches(&scene, MiddlewareConfig::default());
    println!("\nbatches:");
    for (i, b) in batches.iter().enumerate() {
        let names: Vec<_> = b.objects.iter().map(|&o| scene.object(o).name()).collect();
        println!("  batch {i}: {names:?} ({} triangles)", b.triangles);
    }

    // And render the frame under full OO-VR.
    let r = OoVr::new().render_frame(&scene, &GpuConfig::default());
    println!(
        "\nOO-VR frame: {} cycles, {} fragments, {} B inter-GPM",
        r.frame_cycles,
        r.counts.fragments,
        r.inter_gpm_bytes()
    );
}
